package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"seastar/internal/adapt"
	"seastar/internal/datasets"
	"seastar/internal/graph"
	"seastar/internal/sched"
	"seastar/internal/tensor"
	"seastar/internal/train"
)

// PipelineBenchConfig scopes the mini-batch pipeline benchmark: SAGE
// training over a Zipf-degree graph, serial sampling+compute vs the
// bounded three-stage pipeline.
type PipelineBenchConfig struct {
	// Vertices, AvgDegree, Alpha size the Zipf benchmark graph.
	Vertices, AvgDegree int
	Alpha               float64
	// FeatDim and Classes shape the SAGE layer.
	FeatDim, Classes int
	// BatchSize and FanOut shape each sampled mini-batch.
	BatchSize int
	FanOut    []int
	// Prefetch and SampleWorkers configure the pipelined variant (the
	// acceptance gate requires Prefetch ≥ 2).
	Prefetch, SampleWorkers int
	// MaxProcsList is the scheduler worker counts to measure wall times
	// at (sched.SetMaxProcs), one PerProcs row each. Empty means one pass
	// at the current sched.MaxProcs. The report's headline fields come
	// from the first entry.
	MaxProcsList []int
	// Epochs measured per variant; the last epoch's stage trace feeds
	// the overlap model.
	Epochs int
	Seed   int64
	// AdaptVertices, when > 0, also runs the adaptive re-planning
	// experiment on a Zipf graph of that size: the trainer's trial tuner
	// explores pipeline shapes with interleaved measured epochs and the
	// report records the committed shape's win over static. 0 skips it
	// (the CI re-run path; the committed report carries the evidence).
	AdaptVertices int
	// AdaptEpochs bounds the exploration budget (default 36).
	AdaptEpochs int
	// AdaptFeatDim is the feature width for the adaptive experiment
	// (0 = FeatDim). The default is wider than the base benchmark's: deep
	// prefetch holds more in-flight gathered tensors, and that memory
	// pressure — which the overlap model does not price — is exactly what
	// the measured trials exist to expose.
	AdaptFeatDim int
	// AdaptConfig tunes the trial loop (zero = adapt defaults: min of 3
	// interleaved trials per candidate per round, 2-round hysteresis,
	// 10% sustained-win bar).
	AdaptConfig adapt.Config
}

// DefaultPipelineBenchConfig is the acceptance setup: a 20k-vertex Zipf
// graph, two-layer fan-out, depth-4 pipeline with 4 sampling workers.
// The feature width keeps sampling and compute comparable per batch, as
// in sampling-based deployments where CPU-side sampling is the
// bottleneck the pipeline exists to hide (§8).
func DefaultPipelineBenchConfig() PipelineBenchConfig {
	return PipelineBenchConfig{
		Vertices: 20000, AvgDegree: 8, Alpha: 1.0,
		FeatDim: 8, Classes: 4,
		BatchSize: 256, FanOut: []int{10, 5},
		Prefetch: 4, SampleWorkers: 4,
		MaxProcsList: MeasuredProcsList(),
		Epochs:       2, Seed: 1,
		AdaptEpochs: 36, AdaptFeatDim: 64,
	}
}

// PipelineStageNs is the measured average per-batch cost of each stage.
type PipelineStageNs struct {
	Sample  float64 `json:"sample"`
	Gather  float64 `json:"gather"`
	Compute float64 `json:"compute"`
}

// PipelineModel is the host-independent overlap analysis, in the spirit
// of the kernels experiment's makespan model: it replays the measured
// per-batch stage durations through the pipeline's scheduling
// constraints (worker count, reorder, bounded channels, credit cap) and
// compares against the serial sum. The *ratio* depends only on relative
// stage costs, so it gates regressions even on single-core CI hosts
// where measured wall-clock cannot overlap.
type PipelineModel struct {
	SampleWorkers int     `json:"sample_workers"`
	Prefetch      int     `json:"prefetch"`
	SerialNs      float64 `json:"serial_ns"`
	PipelinedNs   float64 `json:"pipelined_ns"`
	Speedup       float64 `json:"speedup"`
	Note          string  `json:"note"`

	// Calibrated is the host-aware restatement: the same replay, floored
	// by CPU capacity (a pipeline cannot run three stages concurrently on
	// fewer cores than stages want). Stage costs come from recorded
	// UnitProfile spans (adapt.Recorder over the serial run), not the raw
	// trace, so the calibration consumes exactly what the re-planner
	// consumes. Compare CalibratedSpeedup against measured WallSpeedup;
	// the uncalibrated Speedup remains the host-independent CI gate.
	CPUCapacity       int             `json:"cpu_capacity,omitempty"`
	ProfiledStageNs   PipelineStageNs `json:"profiled_stage_ns,omitempty"`
	CalibratedNs      float64         `json:"calibrated_ns,omitempty"`
	CalibratedSpeedup float64         `json:"calibrated_speedup,omitempty"`
}

// PipelineReport is the full BENCH_pipeline.json payload.
type PipelineReport struct {
	Experiment string           `json:"experiment"`
	Model      string           `json:"model"`
	Graph      KernelsGraphInfo `json:"graph"`

	BatchSize     int   `json:"batch_size"`
	FanOut        []int `json:"fan_out"`
	Prefetch      int   `json:"prefetch"`
	SampleWorkers int   `json:"sample_workers"`
	Epochs        int   `json:"epochs"`
	Batches       int   `json:"batches_per_epoch"`
	MaxProcs      int   `json:"max_procs"`

	StageAvgNs PipelineStageNs `json:"stage_avg_ns"`

	// Measured wall-clock per epoch (min across measured epochs); on a
	// single-core host the two are expected to be close.
	SerialEpochNs    int64   `json:"serial_epoch_ns"`
	PipelinedEpochNs int64   `json:"pipelined_epoch_ns"`
	WallSpeedup      float64 `json:"wall_speedup"`

	// BitwiseEqual records that the two variants produced identical
	// per-batch loss curves (the pipeline's reproducibility contract),
	// at every measured worker count.
	BitwiseEqual bool `json:"bitwise_equal"`

	// PerProcs holds the measured wall times at each configured
	// scheduler worker count (MaxProcsList).
	PerProcs []PipelineProcsNs `json:"per_procs,omitempty"`

	OverlapModel PipelineModel `json:"overlap_model"`

	// Adaptive is the profile-guided re-planning experiment, present when
	// the benchmark ran with AdaptVertices > 0.
	Adaptive *PipelineAdaptive `json:"adaptive,omitempty"`
}

// PipelineProcsNs is one measured serial-vs-pipelined comparison at a
// fixed scheduler worker count.
type PipelineProcsNs struct {
	MaxProcs         int     `json:"max_procs"`
	SerialEpochNs    int64   `json:"serial_epoch_ns"`
	PipelinedEpochNs int64   `json:"pipelined_epoch_ns"`
	WallSpeedup      float64 `json:"wall_speedup"`
	// MeasuredSpeedup is the pipelined variant's wall-time scaling over
	// its own 1-proc row (pipelined@1 / pipelined@p); 0 on the 1-proc row
	// and when no 1-proc row was measured. Compare against
	// OverlapModel.Speedup for model-vs-measured divergence.
	MeasuredSpeedup float64 `json:"measured_speedup,omitempty"`
	// ModelSpeedup is the calibrated model's serial→pipelined prediction
	// at this row's own recorded stage costs, floored by host CPU
	// capacity — the number WallSpeedup should land within 25% of.
	ModelSpeedup float64 `json:"model_speedup,omitempty"`
	BitwiseEqual bool    `json:"bitwise_equal"`
}

// PipelineAdaptive records the profile-guided re-planning experiment: the
// trainer's trial tuner explored pipeline shapes with interleaved measured
// epochs on a large Zipf graph, and this is the shape it committed plus
// its measured win over the static plan. StaticNs and LearnedNs are the
// min over the tuner's interleaved trials of each shape — the same
// numbers the hysteresis decision was made from.
type PipelineAdaptive struct {
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	FeatDim  int `json:"feat_dim"`
	Epochs   int `json:"epochs"`

	StaticPrefetch int `json:"static_prefetch"`
	StaticWorkers  int `json:"static_workers"`

	LearnedPrefetch int `json:"learned_prefetch"`
	LearnedWorkers  int `json:"learned_workers"`
	Gen             int `json:"gen"`

	StaticNs        int64   `json:"static_ns"`
	LearnedNs       int64   `json:"learned_ns"`
	MeasuredSpeedup float64 `json:"measured_speedup"`

	// BitwiseEqual records that the adaptive run's loss curve matched a
	// static run's over the compared prefix — re-planning the pipeline
	// shape must not perturb numerics.
	BitwiseEqual bool   `json:"bitwise_equal"`
	Why          string `json:"why"`
}

// ModelPipelineNs replays per-batch stage durations through the
// pipeline's scheduling constraints and returns the modeled epoch span:
// `workers` sampling workers claim batches in order, one gather worker
// and one compute worker run in batch order, the ready channel buffers
// `prefetch` batches, and the credit cap (2·prefetch+workers) bounds
// total in-flight batches. All times in float64 nanoseconds.
func ModelPipelineNs(sample, gather, compute []float64, workers, prefetch int) float64 {
	n := len(sample)
	if n == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if prefetch < 1 {
		prefetch = 1
	}
	credits := 2*prefetch + workers
	free := make([]float64, workers) // sampling-worker availability
	sampleDone := make([]float64, n)
	gatherDone := make([]float64, n)
	computeDone := make([]float64, n)
	for i := 0; i < n; i++ {
		// Earliest-free sampling worker claims batch i.
		w := 0
		for j := 1; j < workers; j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		start := free[w]
		// Credit cap: batch i cannot be issued before batch i-credits
		// finished compute.
		if i >= credits && computeDone[i-credits] > start {
			start = computeDone[i-credits]
		}
		sampleDone[i] = start + sample[i]
		free[w] = sampleDone[i]

		// Gather runs in order; the ready channel (depth prefetch)
		// blocks it when compute lags.
		gs := sampleDone[i]
		if i > 0 && gatherDone[i-1] > gs {
			gs = gatherDone[i-1]
		}
		if i > prefetch && computeDone[i-prefetch-1] > gs {
			gs = computeDone[i-prefetch-1]
		}
		gatherDone[i] = gs + gather[i]

		// Compute runs in order on the caller.
		cs := gatherDone[i]
		if i > 0 && computeDone[i-1] > cs {
			cs = computeDone[i-1]
		}
		computeDone[i] = cs + compute[i]
	}
	return computeDone[n-1]
}

// stageProfile is one serial run's recorded stage-cost window, extracted
// from adapt.Recorder UnitProfiles (the obs "pipeline" spans the stages
// emit) — the same measured feed the re-planner consumes.
type stageProfile struct {
	sample, gather, compute adapt.UnitProfile
}

func stageProfileFrom(prof map[string]adapt.UnitProfile) stageProfile {
	return stageProfile{prof["sample"], prof["gather"], prof["compute"]}
}

// calibrate replays the profiled average per-batch stage costs through
// the scheduling model, then floors the result with CPU capacity —
// stages cannot overlap onto fewer cores than their work needs, which
// is why the pure replay over-promises on small hosts. Returns the
// calibrated epoch span and the serial/calibrated speedup (zeros when
// no stage spans were recorded).
func (sp stageProfile) calibrate(workers, prefetch, capacity int) (float64, float64) {
	n := int(sp.sample.Runs)
	if n == 0 || sp.compute.Runs == 0 {
		return 0, 0
	}
	uniform := func(p adapt.UnitProfile) []float64 {
		per := 0.0
		if p.Runs > 0 {
			per = float64(p.Ns) / float64(p.Runs)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = per
		}
		return out
	}
	serialNs := float64(sp.sample.Ns + sp.gather.Ns + sp.compute.Ns)
	replay := ModelPipelineNs(uniform(sp.sample), uniform(sp.gather), uniform(sp.compute), workers, prefetch)
	if floor := serialNs / float64(capacity); replay < floor {
		replay = floor
	}
	return replay, safeRatio(serialNs, replay)
}

// PipelineBench runs the benchmark and returns the report.
func PipelineBench(cfg PipelineBenchConfig) (*PipelineReport, error) {
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha)
	labels := make([]int, g.N)
	for i := range labels {
		labels[i] = rng.Intn(cfg.Classes)
	}
	ds := &datasets.Dataset{
		Name: "zipf-bench", G: g,
		Feat:   tensor.Randn(rng, 1, g.N, cfg.FeatDim),
		Labels: labels, NumClasses: cfg.Classes, Scale: 1,
	}

	opts := train.MiniBatchOptions{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, FanOut: cfg.FanOut,
		LR: 0.01, Seed: cfg.Seed, DegreeSort: true, GPU: "V100", Trace: true,
	}

	serialOpts := opts
	serialOpts.Prefetch = 0
	pipeOpts := opts
	pipeOpts.Prefetch, pipeOpts.SampleWorkers = cfg.Prefetch, cfg.SampleWorkers

	procsList := cfg.MaxProcsList
	if len(procsList) == 0 {
		procsList = []int{sched.MaxProcs}
	}
	capacity := cfg.SampleWorkers + 2 // sampling workers + gather + compute
	if ncpu := runtime.NumCPU(); capacity > ncpu {
		capacity = ncpu
	}
	if capacity < 1 {
		capacity = 1
	}

	var serial train.MiniBatchResult
	var headline stageProfile
	var perProcs []PipelineProcsNs
	for i, procs := range procsList {
		prev := sched.SetMaxProcs(procs)
		rec := adapt.NewRecorder()
		s, err := train.RunMiniBatch(context.Background(), ds, serialOpts)
		prof := stageProfileFrom(rec.Delta())
		rec.Close()
		if err != nil {
			sched.SetMaxProcs(prev)
			return nil, fmt.Errorf("bench: serial @%d procs: %w", procs, err)
		}
		p, err := train.RunMiniBatch(context.Background(), ds, pipeOpts)
		sched.SetMaxProcs(prev)
		if err != nil {
			return nil, fmt.Errorf("bench: pipelined @%d procs: %w", procs, err)
		}
		row := PipelineProcsNs{
			MaxProcs:         procs,
			SerialEpochNs:    minEpochWall(s.Epochs),
			PipelinedEpochNs: minEpochWall(p.Epochs),
			BitwiseEqual:     reflect.DeepEqual(s.Losses, p.Losses),
		}
		row.WallSpeedup = safeRatio(float64(row.SerialEpochNs), float64(row.PipelinedEpochNs))
		if _, calSpeedup := prof.calibrate(cfg.SampleWorkers, cfg.Prefetch, capacity); calSpeedup > 0 {
			row.ModelSpeedup = calSpeedup
		}
		perProcs = append(perProcs, row)
		if i == 0 {
			serial, headline = s, prof
		}
	}

	// Measured pipelined scaling over the 1-proc row, the counterpart of
	// the overlap model's predicted speedup for divergence reporting.
	var pipe1 int64
	for _, r := range perProcs {
		if r.MaxProcs == 1 {
			pipe1 = r.PipelinedEpochNs
			break
		}
	}
	if pipe1 > 0 {
		for i := range perProcs {
			if perProcs[i].MaxProcs > 1 {
				perProcs[i].MeasuredSpeedup = safeRatio(float64(pipe1), float64(perProcs[i].PipelinedEpochNs))
			}
		}
	}

	tr := serial.Trace
	if tr == nil || len(tr.Sample) == 0 {
		return nil, fmt.Errorf("bench: serial run recorded no stage trace")
	}
	toNs := func(ds []time.Duration) []float64 {
		out := make([]float64, len(ds))
		for i, d := range ds {
			out[i] = float64(d)
		}
		return out
	}
	s, gth, c := toNs(tr.Sample), toNs(tr.Gather), toNs(tr.Compute)
	var serialModelNs float64
	for i := range s {
		serialModelNs += s[i] + gth[i] + c[i]
	}
	pipeModelNs := ModelPipelineNs(s, gth, c, cfg.SampleWorkers, cfg.Prefetch)

	rep := &PipelineReport{
		Experiment: "pipeline",
		Model:      "sage (self + neighbour-sum convolution)",
		Graph: KernelsGraphInfo{
			Kind: "zipf", Vertices: g.N, Edges: g.M,
			AvgDegree: cfg.AvgDegree, Alpha: cfg.Alpha, DegreeSorted: true,
		},
		BatchSize: cfg.BatchSize, FanOut: cfg.FanOut,
		Prefetch: cfg.Prefetch, SampleWorkers: cfg.SampleWorkers,
		Epochs: cfg.Epochs, Batches: len(tr.Sample),
		MaxProcs: procsList[0],
		StageAvgNs: PipelineStageNs{
			Sample:  avg(s),
			Gather:  avg(gth),
			Compute: avg(c),
		},
		SerialEpochNs:    perProcs[0].SerialEpochNs,
		PipelinedEpochNs: perProcs[0].PipelinedEpochNs,
		PerProcs:         perProcs,
		BitwiseEqual:     allBitwise(perProcs),
		OverlapModel: PipelineModel{
			SampleWorkers: cfg.SampleWorkers, Prefetch: cfg.Prefetch,
			SerialNs: serialModelNs, PipelinedNs: pipeModelNs,
			Speedup: safeRatio(serialModelNs, pipeModelNs),
			Note: "measured per-batch stage durations replayed through the pipeline's " +
				"scheduling constraints; host-independent — measured wall epoch times " +
				"reflect this machine's cores",
		},
	}
	if calNs, calSpeedup := headline.calibrate(cfg.SampleWorkers, cfg.Prefetch, capacity); calSpeedup > 0 {
		batches := float64(headline.sample.Runs)
		rep.OverlapModel.CPUCapacity = capacity
		rep.OverlapModel.ProfiledStageNs = PipelineStageNs{
			Sample:  float64(headline.sample.Ns) / batches,
			Gather:  float64(headline.gather.Ns) / batches,
			Compute: float64(headline.compute.Ns) / batches,
		}
		rep.OverlapModel.CalibratedNs = calNs
		rep.OverlapModel.CalibratedSpeedup = calSpeedup
	}
	rep.WallSpeedup = safeRatio(float64(rep.SerialEpochNs), float64(rep.PipelinedEpochNs))

	if cfg.AdaptVertices > 0 {
		ad, err := pipelineAdaptive(cfg)
		if err != nil {
			return nil, err
		}
		rep.Adaptive = ad
	}
	return rep, nil
}

// pipelineAdaptive runs the profile-guided re-planning experiment: the
// mini-batch trainer with Adapt on explores pipeline shapes epoch by
// epoch (each epoch is one interleaved wall-clock trial) until the tuner
// settles, then a short static run checks that exploration left the loss
// curve bitwise-untouched. The committed plan's BaseNs/BestNs are the
// min-of-trials measurements the hysteresis decision was made from, so
// MeasuredSpeedup is exactly the win the tuner acted on.
func pipelineAdaptive(cfg PipelineBenchConfig) (*PipelineAdaptive, error) {
	epochs := cfg.AdaptEpochs
	if epochs < 1 {
		epochs = 36
	}
	dim := cfg.AdaptFeatDim
	if dim <= 0 {
		dim = cfg.FeatDim
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	g := graph.ZipfDegree(rng, cfg.AdaptVertices, cfg.AvgDegree, cfg.Alpha)
	labels := make([]int, g.N)
	for i := range labels {
		labels[i] = rng.Intn(cfg.Classes)
	}
	ds := &datasets.Dataset{
		Name: "zipf-adapt", G: g,
		Feat:   tensor.Randn(rng, 1, g.N, dim),
		Labels: labels, NumClasses: cfg.Classes, Scale: 1,
	}

	opts := train.MiniBatchOptions{
		Epochs: epochs, BatchSize: cfg.BatchSize, FanOut: cfg.FanOut,
		LR: 0.01, Seed: cfg.Seed, DegreeSort: true, GPU: "V100",
		Prefetch: cfg.Prefetch, SampleWorkers: cfg.SampleWorkers,
		Adapt: true, AdaptConfig: cfg.AdaptConfig,
	}
	res, err := train.RunMiniBatch(context.Background(), ds, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: adaptive run: %w", err)
	}
	p := res.Plan
	if p == nil {
		return nil, fmt.Errorf("bench: adaptive tuner did not settle within %d epochs "+
			"(raise AdaptEpochs or lower AdaptConfig exploration)", epochs)
	}

	// Learned shape: the plan's tuning overlaid on the static options,
	// with the same keep-static rules the trainer applies.
	pf, w := cfg.Prefetch, cfg.SampleWorkers
	if !p.Tuning.IsZero() {
		if p.Tuning.Prefetch >= 0 {
			pf = p.Tuning.Prefetch
		}
		if p.Tuning.SampleWorkers > 0 {
			w = p.Tuning.SampleWorkers
		}
	}
	why := "static plan validated: no challenger met the sustained-win bar"
	if len(p.Decisions) > 0 && p.Decisions[0].Why != "" {
		why = p.Decisions[0].Why
	}

	// Bitwise check: re-planning must not perturb the loss curve, so a
	// short static run's per-batch losses must be a prefix of the
	// adaptive run's.
	staticOpts := opts
	staticOpts.Adapt = false
	staticOpts.Epochs = 2
	sres, err := train.RunMiniBatch(context.Background(), ds, staticOpts)
	if err != nil {
		return nil, fmt.Errorf("bench: adaptive static comparator: %w", err)
	}
	bitwise := len(sres.Losses) > 0 && len(res.Losses) >= len(sres.Losses) &&
		reflect.DeepEqual(sres.Losses, res.Losses[:len(sres.Losses)])

	return &PipelineAdaptive{
		Vertices: g.N, Edges: g.M, FeatDim: dim, Epochs: epochs,
		StaticPrefetch: cfg.Prefetch, StaticWorkers: cfg.SampleWorkers,
		LearnedPrefetch: pf, LearnedWorkers: w, Gen: p.Gen,
		StaticNs: p.BaseNs, LearnedNs: p.BestNs,
		MeasuredSpeedup: safeRatio(float64(p.BaseNs), float64(p.BestNs)),
		BitwiseEqual:    bitwise,
		Why:             why,
	}, nil
}

func allBitwise(rows []PipelineProcsNs) bool {
	for _, r := range rows {
		if !r.BitwiseEqual {
			return false
		}
	}
	return true
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

func minEpochWall(eps []train.EpochStats) int64 {
	var min int64
	for _, e := range eps {
		if min == 0 || e.WallNs < min {
			min = e.WallNs
		}
	}
	return min
}

// WritePipelineJSON serializes the report for BENCH_pipeline.json.
func WritePipelineJSON(w io.Writer, rep *PipelineReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WritePipelineText renders the report for terminals.
func WritePipelineText(w io.Writer, rep *PipelineReport) {
	fmt.Fprintf(w, "graph: %s n=%d m=%d alpha=%.2f\n",
		rep.Graph.Kind, rep.Graph.Vertices, rep.Graph.Edges, rep.Graph.Alpha)
	fmt.Fprintf(w, "model: %s, batch %d, fan-out %v, %d batches/epoch\n",
		rep.Model, rep.BatchSize, rep.FanOut, rep.Batches)
	fmt.Fprintf(w, "stage avg: sample %.2f ms, gather %.2f ms, compute %.2f ms\n",
		rep.StageAvgNs.Sample/1e6, rep.StageAvgNs.Gather/1e6, rep.StageAvgNs.Compute/1e6)
	fmt.Fprintf(w, "measured epoch: serial %.1f ms vs pipelined %.1f ms → %.2fx (this host, %d procs)\n",
		float64(rep.SerialEpochNs)/1e6, float64(rep.PipelinedEpochNs)/1e6,
		rep.WallSpeedup, rep.MaxProcs)
	extra := rep.PerProcs
	if len(extra) > 0 {
		extra = extra[1:]
	}
	for _, r := range extra {
		fmt.Fprintf(w, "measured epoch: serial %.1f ms vs pipelined %.1f ms → %.2fx (this host, %d procs)\n",
			float64(r.SerialEpochNs)/1e6, float64(r.PipelinedEpochNs)/1e6,
			r.WallSpeedup, r.MaxProcs)
	}
	m := rep.OverlapModel
	fmt.Fprintf(w, "overlap model @%d sample workers, prefetch %d: serial %.1f ms vs pipelined %.1f ms → %.2fx\n",
		m.SampleWorkers, m.Prefetch, m.SerialNs/1e6, m.PipelinedNs/1e6, m.Speedup)
	if m.CalibratedSpeedup > 0 {
		fmt.Fprintf(w, "calibrated (profiled stages, %d-core capacity): %.1f ms → %.2fx expected on this host\n",
			m.CPUCapacity, m.CalibratedNs/1e6, m.CalibratedSpeedup)
	}
	fmt.Fprintf(w, "loss curves bitwise equal: %v\n", rep.BitwiseEqual)
	if ad := rep.Adaptive; ad != nil {
		fmt.Fprintf(w, "adaptive (n=%d, %d epochs): static pf=%d/w=%d %.1f ms → learned pf=%d/w=%d %.1f ms, %.2fx (gen=%d, bitwise %v)\n",
			ad.Vertices, ad.Epochs,
			ad.StaticPrefetch, ad.StaticWorkers, float64(ad.StaticNs)/1e6,
			ad.LearnedPrefetch, ad.LearnedWorkers, float64(ad.LearnedNs)/1e6,
			ad.MeasuredSpeedup, ad.Gen, ad.BitwiseEqual)
	}
}

package datasets

import (
	"math"
	"testing"
)

func TestTable2Coverage(t *testing.T) {
	if len(Names()) != 12 {
		t.Fatalf("dataset count %d, want 12", len(Names()))
	}
	if len(Homogeneous()) != 9 || len(Heterogeneous()) != 3 {
		t.Fatal("homogeneous/heterogeneous split wrong")
	}
	for _, name := range Names() {
		n, m, feat, rel, err := Stats(name)
		if err != nil || n <= 0 || m <= 0 || feat <= 0 || rel <= 0 {
			t.Fatalf("%s stats: %d %d %d %d %v", name, n, m, feat, rel, err)
		}
	}
	if _, _, _, _, err := Stats("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadSmallDatasets(t *testing.T) {
	for _, name := range []string{"cora", "citeseer"} {
		d, err := Load(name, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d.G.N != d.PaperN || d.G.M != d.PaperM {
			t.Fatalf("%s: %d/%d vs paper %d/%d", name, d.G.N, d.G.M, d.PaperN, d.PaperM)
		}
		if err := d.G.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.Feat.Rows() != d.G.N {
			t.Fatal("feature rows")
		}
		if len(d.Labels) != d.G.N {
			t.Fatal("label count")
		}
		for _, l := range d.Labels {
			if l < 0 || l >= d.NumClasses {
				t.Fatal("label out of range")
			}
		}
		// Masks partition the vertices.
		for i := 0; i < d.G.N; i++ {
			c := 0
			if d.TrainMask[i] {
				c++
			}
			if d.ValMask[i] {
				c++
			}
			if d.TestMask[i] {
				c++
			}
			if c != 1 {
				t.Fatalf("vertex %d in %d masks", i, c)
			}
		}
	}
}

func TestLoadScaledPreservesAvgDegree(t *testing.T) {
	d, err := Load("reddit", 1.0/64, 1)
	if err != nil {
		t.Fatal(err)
	}
	paperAvg := float64(d.PaperM) / float64(d.PaperN)
	if math.Abs(d.G.AvgDegree()-paperAvg)/paperAvg > 0.25 {
		t.Fatalf("scaled avg degree %.1f vs paper %.1f", d.G.AvgDegree(), paperAvg)
	}
	// Power-law: heavy tail present.
	if float64(d.G.In.MaxDegree()) < 3*d.G.AvgDegree() {
		t.Fatal("reddit-like graph lacks degree skew")
	}
}

func TestLoadHeteroDatasets(t *testing.T) {
	d, err := Load("aifb", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRelations != 90 || d.G.NumEdgeTypes != 90 {
		t.Fatalf("aifb relations: %d / %d", d.NumRelations, d.G.NumEdgeTypes)
	}
	// Edge types must be sorted within rows (required by hetero kernel).
	for k := 0; k < d.G.N; k++ {
		_, eids := d.G.In.Row(k)
		for i := 0; i+1 < len(eids); i++ {
			if d.G.EdgeTypes[eids[i]] > d.G.EdgeTypes[eids[i+1]] {
				t.Fatal("edge types not sorted")
			}
		}
	}
}

func TestLoadDeterminism(t *testing.T) {
	a := MustLoad("cora", 1, 7)
	b := MustLoad("cora", 1, 7)
	if a.G.M != b.G.M || a.Feat.At(0, 0) != b.Feat.At(0, 0) || a.Labels[5] != b.Labels[5] {
		t.Fatal("same seed must reproduce the dataset")
	}
	c := MustLoad("cora", 1, 8)
	if a.Feat.At(0, 0) == c.Feat.At(0, 0) {
		t.Fatal("different seed should differ")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("nope", 1, 1); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := Load("cora", 0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Load("cora", 2, 1); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}

func TestDefaultScales(t *testing.T) {
	if DefaultScale("reddit") >= 1 || DefaultScale("cora") != 1 {
		t.Fatal("default scales")
	}
}

func TestGCNNorm(t *testing.T) {
	d := MustLoad("cora", 0.05, 3)
	norm := GCNNorm(d.G)
	deg := d.G.InDegrees()
	for v := 0; v < d.G.N; v++ {
		if deg[v] == 0 {
			if norm.At(v, 0) != 0 {
				t.Fatal("isolated vertex norm must be 0")
			}
		} else if math.Abs(float64(norm.At(v, 0))-1/float64(deg[v])) > 1e-6 {
			t.Fatalf("norm[%d] = %v for degree %d", v, norm.At(v, 0), deg[v])
		}
	}
}

func TestRGCNEdgeNorm(t *testing.T) {
	d := MustLoad("mutag", 0.05, 4)
	norm := RGCNEdgeNorm(d.G)
	// For every edge, 1/norm must equal the count of same-type in-edges
	// at its destination.
	for e := 0; e < d.G.M; e++ {
		count := 0
		for e2 := 0; e2 < d.G.M; e2++ {
			if d.G.Dsts[e2] == d.G.Dsts[e] && d.G.EdgeTypes[e2] == d.G.EdgeTypes[e] {
				count++
			}
		}
		if math.Abs(float64(norm.At(e, 0))-1/float64(count)) > 1e-6 {
			t.Fatalf("edge %d norm %v, count %d", e, norm.At(e, 0), count)
		}
	}
}

package datasets

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadCachedMatchesLoad(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"cora", "aifb"} {
		direct, err := Load(name, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		// First call generates + writes the cache.
		c1, err := LoadCached(dir, name, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		// Second call reads the cache.
		c2, err := LoadCached(dir, name, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, got := range []*Dataset{c1, c2} {
			if got.G.N != direct.G.N || got.G.M != direct.G.M {
				t.Fatalf("%s: graph size differs", name)
			}
			for e := 0; e < got.G.M; e++ {
				if got.G.Srcs[e] != direct.G.Srcs[e] || got.G.Dsts[e] != direct.G.Dsts[e] {
					t.Fatalf("%s: edge %d differs", name, e)
				}
			}
			if got.Feat.At(0, 0) != direct.Feat.At(0, 0) || got.Labels[3] != direct.Labels[3] {
				t.Fatalf("%s: data streams diverge", name)
			}
			if got.TrainMask[0] != direct.TrainMask[0] {
				t.Fatalf("%s: masks diverge", name)
			}
		}
		// The cache file must exist.
		matches, _ := filepath.Glob(filepath.Join(dir, name+"_*.sgr"))
		if len(matches) != 1 {
			t.Fatalf("%s: cache files %v", name, matches)
		}
	}
}

func TestLoadCachedEmptyDirFallsBack(t *testing.T) {
	d, err := LoadCached("", "cora", 0.05, 1)
	if err != nil || d == nil {
		t.Fatal(err)
	}
}

func TestLoadCachedCorruptEntryRegenerates(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCached(dir, "cora", 0.05, 2); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.sgr"))
	if len(matches) != 1 {
		t.Fatal("no cache file")
	}
	if err := os.WriteFile(matches[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadCached(dir, "cora", 0.05, 2)
	if err != nil {
		t.Fatalf("corrupt cache not recovered: %v", err)
	}
	if d.G.N == 0 {
		t.Fatal("empty dataset")
	}
}

func TestLoadCachedUnknownName(t *testing.T) {
	if _, err := LoadCached(t.TempDir(), "nope", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

package datasets

import (
	"fmt"
	"os"
	"path/filepath"

	"seastar/internal/graph"
)

// LoadCached is Load backed by an on-disk graph cache: generating the
// largest synthetic graphs (reddit at high scales) takes seconds, so
// repeated benchmark runs reuse the serialized structure. Features,
// labels and masks are regenerated from the seed (they are cheap and
// keeping them out of the cache keeps files small). The cache key covers
// name, scale and seed; a missing or corrupt file falls back to
// generation and rewrites the entry.
func LoadCached(dir, name string, scale float64, seed int64) (*Dataset, error) {
	if dir == "" {
		return Load(name, scale, seed)
	}
	if _, ok := table2[name]; !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datasets: cache dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_s%g_seed%d.sgr", name, scale, seed))

	if f, err := os.Open(path); err == nil {
		g, rerr := graph.ReadGraph(f)
		f.Close()
		if rerr == nil {
			return assembleFromGraph(name, g, scale, seed)
		}
		// Corrupt cache entry: regenerate below.
		os.Remove(path)
	}

	ds, err := Load(name, scale, seed)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("datasets: writing cache: %w", err)
	}
	if _, err := ds.G.WriteTo(f); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("datasets: writing cache: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return ds, nil
}

// assembleFromGraph rebuilds the dataset around a cached graph using the
// same data-stream derivations Load performs after generation.
func assembleFromGraph(name string, g *graph.Graph, scale float64, seed int64) (*Dataset, error) {
	return finishDataset(name, g, scale, seed)
}

// Package datasets synthesizes the twelve datasets of the paper's Table 2.
// The real datasets are not shipped with this reproduction; instead each
// is generated to match the statistics the experiments actually exercise:
// vertex and edge counts, feature width, class count, relation count, and
// degree skew (power-law for the social/co-purchase graphs, near-uniform
// for the citation graphs).
//
// Large graphs can be generated at a reduced Scale: vertex and edge counts
// shrink proportionally (average degree is preserved) and the device
// simulator extrapolates time and memory by 1/Scale, so figure shapes and
// OOM thresholds survive scaling (see DESIGN.md).
package datasets

import (
	"fmt"
	"math/rand"

	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Dataset is one benchmark graph with features, labels and masks.
type Dataset struct {
	Name string
	G    *graph.Graph
	// Feat is the [N, F] input feature matrix.
	Feat *tensor.Tensor
	// Labels and the split masks drive node-classification training.
	Labels     []int
	NumClasses int
	TrainMask  []bool
	ValMask    []bool
	TestMask   []bool
	// NumRelations > 1 marks a heterogeneous dataset.
	NumRelations int
	// Scale is the instantiated fraction of the paper-scale graph.
	Scale float64
	// PaperN / PaperM are the full-scale counts from Table 2.
	PaperN, PaperM int
}

// spec describes a Table 2 row.
type spec struct {
	n, m      int
	feat      int
	classes   int
	relations int
	powerLaw  bool
}

// Table2 reproduces the paper's dataset table.
var table2 = map[string]spec{
	"cora":       {2709, 10556, 1433, 7, 1, false},
	"citeseer":   {3328, 9228, 3703, 6, 1, false},
	"pubmed":     {19718, 88651, 500, 3, 1, false},
	"corafull":   {19794, 130622, 8710, 70, 1, false},
	"ca_cs":      {18334, 327576, 6805, 15, 1, false},
	"ca_physics": {34494, 991848, 8415, 5, 1, false},
	"amz_photo":  {7651, 287326, 745, 8, 1, true},
	"amz_comp":   {13753, 574418, 767, 10, 1, true},
	"reddit":     {198021, 84120742, 602, 41, 1, true},
	"aifb":       {8285, 58086, 16, 4, 90, false},
	"mutag":      {23644, 148454, 16, 2, 46, false},
	"bgs":        {333845, 1832398, 16, 2, 206, true},
}

// Homogeneous lists the 9 single-relation datasets in the paper's order.
func Homogeneous() []string {
	return []string{"cora", "citeseer", "pubmed", "corafull", "ca_cs",
		"ca_physics", "amz_photo", "amz_comp", "reddit"}
}

// Heterogeneous lists the 3 multi-relation datasets.
func Heterogeneous() []string { return []string{"aifb", "mutag", "bgs"} }

// Names lists every dataset.
func Names() []string { return append(Homogeneous(), Heterogeneous()...) }

// DefaultScale returns the instantiation fraction used by the benchmark
// harness: large graphs are generated smaller and extrapolated.
func DefaultScale(name string) float64 {
	switch name {
	case "reddit":
		return 1.0 / 16
	case "bgs":
		return 0.5
	case "ca_physics":
		return 0.5
	default:
		return 1
	}
}

// Stats returns the full-scale Table 2 row for a dataset name.
func Stats(name string) (n, m, feat, relations int, err error) {
	s, ok := table2[name]
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	return s.n, s.m, s.feat, s.relations, nil
}

// Load generates a dataset by name at the given scale with a fixed seed
// (the same seed always yields the same dataset). The graph structure and
// the features/labels/masks are drawn from independent deterministic
// streams so that a structure loaded from the cache (LoadCached) pairs
// with identical data.
func Load(name string, scale float64, seed int64) (*Dataset, error) {
	s, ok := table2[name]
	if !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("datasets: scale %v out of (0,1]", scale)
	}
	rng := rand.New(rand.NewSource(seed))

	n := int(float64(s.n) * scale)
	if n < 16 {
		n = 16
	}
	m := int(float64(s.m) * scale)

	var g *graph.Graph
	if s.powerLaw {
		epv := m / n
		if epv < 1 {
			epv = 1
		}
		g = graph.PowerLaw(rng, n, epv)
	} else {
		maxM := n * (n - 1) / 2
		if m > maxM {
			m = maxM
		}
		g = graph.GNM(rng, n, m)
	}
	if s.relations > 1 {
		graph.RandomEdgeTypes(rng, g, s.relations)
	}
	return finishDataset(name, g, scale, seed)
}

// finishDataset derives features, labels and masks (from a data-stream
// seed independent of the structure stream) and applies the hetero
// edge-type sort.
func finishDataset(name string, g *graph.Graph, scale float64, seed int64) (*Dataset, error) {
	s := table2[name]
	if s.relations > 1 {
		if err := g.SortEdgesByType(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	d := &Dataset{
		Name:         name,
		G:            g,
		Feat:         tensor.Randn(rng, 1, g.N, s.feat),
		Labels:       make([]int, g.N),
		NumClasses:   s.classes,
		NumRelations: s.relations,
		Scale:        scale,
		PaperN:       s.n,
		PaperM:       s.m,
	}
	for i := range d.Labels {
		d.Labels[i] = rng.Intn(s.classes)
	}
	d.TrainMask, d.ValMask, d.TestMask = splitMasks(rng, g.N)
	return d, nil
}

// MustLoad is Load for tests and tooling with vetted names.
func MustLoad(name string, scale float64, seed int64) *Dataset {
	d, err := Load(name, scale, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// splitMasks assigns 10% train / 10% validation / 80% test.
func splitMasks(rng *rand.Rand, n int) (train, val, test []bool) {
	train = make([]bool, n)
	val = make([]bool, n)
	test = make([]bool, n)
	perm := rng.Perm(n)
	nTrain := n / 10
	if nTrain < 1 {
		nTrain = 1
	}
	nVal := n / 10
	for i, p := range perm {
		switch {
		case i < nTrain:
			train[p] = true
		case i < nTrain+nVal:
			val[p] = true
		default:
			test[p] = true
		}
	}
	return train, val, test
}

// GCNNorm returns the per-vertex 1/in-degree normalizer used by the GCN
// layer formula in Figure 1 (isolated vertices get 0).
func GCNNorm(g *graph.Graph) *tensor.Tensor {
	deg := g.InDegrees()
	t := tensor.New(g.N, 1)
	for v := 0; v < g.N; v++ {
		if deg[v] > 0 {
			t.Set(v, 0, 1/float32(deg[v]))
		}
	}
	return t
}

// RGCNEdgeNorm returns the per-edge 1/c_{v,r} normalizer of the R-GCN
// formula: the reciprocal of the number of in-edges of v with the same
// relation type as the edge.
func RGCNEdgeNorm(g *graph.Graph) *tensor.Tensor {
	t := tensor.New(g.M, 1)
	counts := make(map[int64]int32)
	key := func(v int32, r int32) int64 { return int64(v)<<32 | int64(r) }
	for e := 0; e < g.M; e++ {
		counts[key(g.Dsts[e], g.EdgeTypes[e])]++
	}
	for e := 0; e < g.M; e++ {
		c := counts[key(g.Dsts[e], g.EdgeTypes[e])]
		t.Set(e, 0, 1/float32(c))
	}
	return t
}

package gir

import (
	"strings"
	"testing"
)

// gcnUDF is the paper's Figure 3 GCN body: sum(mm(u.h, W) * u.norm).
func gcnUDF(b *Builder) UDF {
	W := b.Param("W", 4, 2)
	return func(v *Vertex) *Value {
		return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
	}
}

// gatUDF is the paper's Figure 3 GAT body (attention already projected
// into eu/ev as in the paper).
func gatUDF(b *Builder) UDF {
	return func(v *Vertex) *Value {
		e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
		s := e.AggSum()
		a := e.Div(s)
		return a.Mul(v.Nbr("h")).AggSum()
	}
}

func buildGCN(t *testing.T) *DAG {
	t.Helper()
	b := NewBuilder()
	b.VFeature("h", 4)
	b.VFeature("norm", 1)
	dag, err := b.Build(gcnUDF(b))
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

func buildGAT(t *testing.T) *DAG {
	t.Helper()
	b := NewBuilder()
	b.VFeature("eu", 1)
	b.VFeature("ev", 1)
	b.VFeature("h", 8)
	dag, err := b.Build(gatUDF(b))
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

func TestGCNTraceTypes(t *testing.T) {
	dag := buildGCN(t)
	if err := dag.Validate(); err != nil {
		t.Fatal(err)
	}
	out := dag.Outputs[0]
	if out.Op != OpAgg || out.Type != TypeD || out.Dir != AggToDst {
		t.Fatalf("output: %v", out)
	}
	// The chain below the aggregation stays S-typed (S-S fusion source).
	mul := out.Inputs[0]
	if mul.Op != OpMul || mul.Type != TypeS {
		t.Fatalf("mul: %v", mul)
	}
	mm := mul.Inputs[0]
	if mm.Op != OpMatMulP || mm.Type != TypeS || mm.Dim() != 2 {
		t.Fatalf("matmul: %v", mm)
	}
}

func TestGATTraceTypes(t *testing.T) {
	// Reproduces the typing walk-through of §5.1/Figure 6: Add(S,D)=E,
	// LeakyRelu E, Exp E, AggSum → D, Div(E,D)=E, Mul(E,S)=E, AggSum → D.
	dag := buildGAT(t)
	if err := dag.Validate(); err != nil {
		t.Fatal(err)
	}
	types := map[OpKind][]GraphType{}
	for _, n := range dag.Nodes {
		types[n.Op] = append(types[n.Op], n.Type)
	}
	if got := types[OpAdd]; len(got) != 1 || got[0] != TypeE {
		t.Fatalf("Add types: %v", got)
	}
	if got := types[OpLeakyReLU]; len(got) != 1 || got[0] != TypeE {
		t.Fatalf("LeakyReLU types: %v", got)
	}
	if got := types[OpDiv]; len(got) != 1 || got[0] != TypeE {
		t.Fatalf("Div types: %v (E/D must be E)", got)
	}
	if got := types[OpMul]; len(got) != 1 || got[0] != TypeE {
		t.Fatalf("Mul types: %v (E*S must be E)", got)
	}
	if got := types[OpAgg]; len(got) != 2 || got[0] != TypeD || got[1] != TypeD {
		t.Fatalf("Agg types: %v", got)
	}
}

func TestTypeInferenceRules(t *testing.T) {
	cases := []struct {
		a, b, want GraphType
	}{
		{TypeS, TypeS, TypeS},
		{TypeD, TypeD, TypeD},
		{TypeE, TypeE, TypeE},
		{TypeS, TypeD, TypeE},
		{TypeS, TypeE, TypeE},
		{TypeD, TypeE, TypeE},
		{TypeP, TypeS, TypeS},
		{TypeD, TypeP, TypeD},
		{TypeP, TypeP, TypeP},
	}
	for _, c := range cases {
		if got := inferBinaryType(c.a, c.b); got != c.want {
			t.Errorf("infer(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestBroadcastShapes(t *testing.T) {
	b := NewBuilder()
	b.VFeature("x", 4)
	b.VFeature("s", 1)
	dag, err := b.Build(func(v *Vertex) *Value {
		return v.Nbr("x").Mul(v.Nbr("s")).AggSum() // [4] * [1] broadcasts
	})
	if err != nil {
		t.Fatal(err)
	}
	if dag.Outputs[0].Dim() != 4 {
		t.Fatalf("broadcast result dim %d", dag.Outputs[0].Dim())
	}
}

func TestTraceErrors(t *testing.T) {
	cases := map[string]func(b *Builder) UDF{
		"unknown feature": func(b *Builder) UDF {
			return func(v *Vertex) *Value { return v.Nbr("missing").AggSum() }
		},
		"unknown edge feature": func(b *Builder) UDF {
			return func(v *Vertex) *Value { return v.Edge("missing").AggSum() }
		},
		"unknown self feature": func(b *Builder) UDF {
			return func(v *Vertex) *Value { return v.Self("missing").AggSum() }
		},
		"shape mismatch": func(b *Builder) UDF {
			b.VFeature("a", 3)
			b.VFeature("b", 4)
			return func(v *Vertex) *Value { return v.Nbr("a").Add(v.Nbr("b")).AggSum() }
		},
		"matmul dim mismatch": func(b *Builder) UDF {
			b.VFeature("a", 3)
			W := b.Param("W", 4, 2)
			return func(v *Vertex) *Value { return v.Nbr("a").MatMul(W).AggSum() }
		},
		"matmul by non-param": func(b *Builder) UDF {
			b.VFeature("a", 3)
			return func(v *Vertex) *Value { return v.Nbr("a").MatMul(v.Nbr("a")).AggSum() }
		},
		"non-D output": func(b *Builder) UDF {
			b.VFeature("a", 3)
			return func(v *Vertex) *Value { return v.Nbr("a") }
		},
		"nil output": func(b *Builder) UDF {
			return func(v *Vertex) *Value { return nil }
		},
		"aggregate param": func(b *Builder) UDF {
			W := b.Param("W", 2, 2)
			return func(v *Vertex) *Value { return W.AggSum() }
		},
	}
	for name, mk := range cases {
		b := NewBuilder()
		udf := mk(b)
		if _, err := b.Build(udf); err == nil {
			t.Errorf("%s: expected trace error", name)
		}
	}
}

func TestMatMulTyped(t *testing.T) {
	b := NewBuilder()
	b.VFeature("h", 4)
	b.EFeature("norm", 1)
	Ws := b.Param("W", 3, 4, 2) // 3 relations
	dag, err := b.Build(func(v *Vertex) *Value {
		return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(AggSum, AggSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	var mm *Node
	for _, n := range dag.Nodes {
		if n.Op == OpMatMulTyped {
			mm = n
		}
	}
	if mm == nil || mm.Type != TypeE || mm.Dim() != 2 {
		t.Fatalf("typed matmul node: %v", mm)
	}
	out := dag.Outputs[0]
	if out.Op != OpAggHier || out.Attr.InnerOp != AggSum || out.Attr.OuterOp != AggSum {
		t.Fatalf("hier agg: %v", out)
	}
}

func TestMatMulTypedErrors(t *testing.T) {
	for name, mk := range map[string]func(b *Builder) UDF{
		"2d weight": func(b *Builder) UDF {
			b.VFeature("h", 4)
			W := b.Param("W", 4, 2)
			return func(v *Vertex) *Value { return v.Nbr("h").MatMulTyped(W).AggSum() }
		},
		"dst input": func(b *Builder) UDF {
			b.VFeature("h", 4)
			W := b.Param("W", 3, 4, 2)
			return func(v *Vertex) *Value { return v.Self("h").MatMulTyped(W).AggSum() }
		},
		"dim mismatch": func(b *Builder) UDF {
			b.VFeature("h", 5)
			W := b.Param("W", 3, 4, 2)
			return func(v *Vertex) *Value { return v.Nbr("h").MatMulTyped(W).AggSum() }
		},
	} {
		b := NewBuilder()
		if _, err := b.Build(mk(b)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDAGHelpers(t *testing.T) {
	dag := buildGCN(t)
	vkeys, ekeys := dag.FeatureKeys()
	if len(vkeys) != 2 || len(ekeys) != 0 {
		t.Fatalf("feature keys: %v %v", vkeys, ekeys)
	}
	if pk := dag.ParamKeys(); len(pk) != 1 || pk[0] != "W" {
		t.Fatalf("param keys: %v", pk)
	}
	if len(dag.Leaves()) != 3 { // h, norm, W
		t.Fatalf("leaves: %d", len(dag.Leaves()))
	}
	cons := dag.Consumers()
	out := dag.Outputs[0]
	if len(cons[out.Inputs[0]]) != 1 {
		t.Fatal("consumer map wrong")
	}
	s := dag.String()
	if !strings.Contains(s, "Agg<D>") || !strings.Contains(s, "outputs:") {
		t.Fatalf("String():\n%s", s)
	}
}

func TestPruneDropsDeadNodes(t *testing.T) {
	b := NewBuilder()
	b.VFeature("h", 2)
	dag, err := b.Build(func(v *Vertex) *Value {
		dead := v.Nbr("h").Exp() // never used
		_ = dead
		return v.Nbr("h").AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	before := len(dag.Nodes)
	pruned := dag.Prune()
	if len(pruned.Nodes) >= before {
		t.Fatalf("prune: %d -> %d", before, len(pruned.Nodes))
	}
	if err := pruned.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range pruned.Nodes {
		if n.Op == OpExp {
			t.Fatal("dead Exp survived prune")
		}
	}
}

func TestNodeAndEnumStrings(t *testing.T) {
	dag := buildGAT(t)
	for _, n := range dag.Nodes {
		if n.String() == "" {
			t.Fatal("empty node string")
		}
	}
	if TypeS.String() != "S" || TypeP.String() != "P" || GraphType(9).String() == "" {
		t.Fatal("GraphType strings")
	}
	if AggToDst.String() != "A:D" || AggToSrc.String() != "A:S" {
		t.Fatal("AggDir strings")
	}
	if AggSum.String() != "sum" || AggKind(9).String() == "" {
		t.Fatal("AggKind strings")
	}
	if OpAdd.String() != "Add" || OpKind(99).String() == "" {
		t.Fatal("OpKind strings")
	}
	if LeafParam.String() != "param" || LeafKind(9).String() == "" {
		t.Fatal("LeafKind strings")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	dag := buildGCN(t)
	// Break topo order by reversing nodes.
	bad := &DAG{Nodes: make([]*Node, len(dag.Nodes)), Outputs: dag.Outputs}
	for i, n := range dag.Nodes {
		bad.Nodes[len(dag.Nodes)-1-i] = n
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("reversed DAG validated")
	}
	// Output outside DAG.
	orphan := &Node{ID: 999, Op: OpLeaf}
	bad2 := &DAG{Nodes: dag.Nodes, Outputs: []*Node{orphan}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("orphan output validated")
	}
}

func TestRowSum(t *testing.T) {
	b := NewBuilder()
	b.VFeature("h", 6)
	dag, err := b.Build(func(v *Vertex) *Value {
		return v.Nbr("h").RowSum().Exp().AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	var rs *Node
	for _, n := range dag.Nodes {
		if n.Op == OpRowSum {
			rs = n
		}
	}
	if rs == nil || rs.Type != TypeS || rs.Dim() != 1 {
		t.Fatalf("RowSum node: %v", rs)
	}
	if dag.Outputs[0].Dim() != 1 {
		t.Fatalf("output dim %d", dag.Outputs[0].Dim())
	}
}

func TestNewDAGPreservesTraceOrder(t *testing.T) {
	// The fusion tie-break depends on construction order surviving
	// optimizer rewrites: NewDAG must keep surviving nodes in relative
	// (trace) order even though its reachability walk is depth-first.
	b := NewBuilder()
	b.VFeature("h", 2)
	dag, err := b.Build(func(v *Vertex) *Value {
		early := v.Self("h").MulScalar(2) // traced first
		return v.Nbr("h").AggSum().Add(early)
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned := dag.Prune()
	// MulConst was traced before the aggregation and must stay earlier.
	posMul, posAgg := -1, -1
	for i, n := range pruned.Nodes {
		switch n.Op {
		case OpMulConst:
			posMul = i
		case OpAgg:
			posAgg = i
		}
	}
	if posMul < 0 || posAgg < 0 || posMul > posAgg {
		t.Fatalf("trace order lost: MulConst at %d, Agg at %d", posMul, posAgg)
	}
}

// Package gir implements Seastar's graph-aware intermediate representation
// (paper §5.1): a computational DAG whose tensors carry a *graph type* —
// S (source-wise), D (destination-wise), E (edge-wise), P (parameter) —
// plus the distinguished aggregation operators (graph type A in the
// paper), and the vertex-centric tracer that builds the DAG from a
// user-defined function written against a single center vertex.
package gir

import "fmt"

// GraphType classifies what a GIR tensor's rows are indexed by (§5.1).
type GraphType int

const (
	// TypeS tensors hold one row per *source* vertex of an edge access.
	TypeS GraphType = iota
	// TypeD tensors hold one row per *destination* (center) vertex.
	TypeD
	// TypeE tensors hold one row per edge.
	TypeE
	// TypeP tensors are parameters shared by all vertices/edges.
	TypeP
)

// String renders the type as the paper's single-letter code: S, D, E, P.
func (t GraphType) String() string {
	switch t {
	case TypeS:
		return "S"
	case TypeD:
		return "D"
	case TypeE:
		return "E"
	case TypeP:
		return "P"
	default:
		return fmt.Sprintf("GraphType(%d)", int(t))
	}
}

// AggDir distinguishes the paper's A:D and A:S aggregation operators
// (§6.2): A:D aggregates edge/source values per destination (the forward
// direction); A:S aggregates per source over out-edges (the backward
// direction).
type AggDir int

const (
	// AggToDst produces a D-typed tensor (A:D).
	AggToDst AggDir = iota
	// AggToSrc produces an S-typed tensor (A:S).
	AggToSrc
)

// String renders the direction as the paper's A:D / A:S notation.
func (d AggDir) String() string {
	if d == AggToDst {
		return "A:D"
	}
	return "A:S"
}

// OutType returns the graph type an aggregation of this direction yields.
func (d AggDir) OutType() GraphType {
	if d == AggToDst {
		return TypeD
	}
	return TypeS
}

// AggKind is the reduction applied by an aggregation operator.
type AggKind int

const (
	AggSum  AggKind = iota // Σ over incident edges
	AggMax                 // elementwise max
	AggMin                 // elementwise min
	AggMean                // Σ divided by the receiver's degree
)

// String names the reduction (sum, max, min, mean).
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggMean:
		return "mean"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// OpKind enumerates GIR operators. The set covers the four paper models
// (GCN, GAT, APPNP, R-GCN) in both forward and backward form.
type OpKind int

const (
	// OpLeaf is an input: a vertex/edge feature, a parameter, or the
	// incoming gradient placeholder in a backward GIR.
	OpLeaf OpKind = iota

	// Binary elementwise (shapes broadcast [1] against [d]).
	OpAdd // x + y
	OpSub // x - y
	OpMul // x * y
	OpDiv // x / y

	// Unary elementwise.
	OpNeg       // -x
	OpExp       // e^x
	OpLog       // ln x
	OpLeakyReLU // Attr: slope
	OpReLU      // max(x, 0)
	OpSigmoid   // 1/(1+e^-x)
	OpTanh      // tanh x
	OpMulConst  // Attr: c
	OpAddConst  // Attr: c

	// Parameter matrix products: row-vector x times P-typed weight.
	OpMatMulP  // x[in] @ W[in,out]  -> [out]
	OpMatMulPT // g[out] @ Wᵀ        -> [in]
	// Per-edge-type weights for heterogeneous models: W has shape
	// [R, in, out] and the edge's type selects the slice.
	OpMatMulTyped  // x[in] @ W[type(e),in,out] -> [out]
	OpMatMulTypedT // g[out] @ W[type(e)]ᵀ      -> [in]

	// Gradient helpers emitted by autodiff (inputs: saved value, grad).
	OpLeakyReLUGrad // Attr: slope; inputs: x, g
	OpReLUGrad      // inputs: x, g
	OpSigmoidGrad   // inputs: y (forward output), g
	OpTanhGrad      // inputs: y, g

	// OpRowSum reduces a per-row vector to a scalar ([d] -> [1]) within
	// the same graph type; autodiff emits it for scalar-broadcast
	// gradients, and UDFs may use it for attention scores.
	OpRowSum
	// OpEdgeView reads a vertex-typed (S or D) value edge-wise: the
	// identity map e ↦ value[endpoint(e)], producing an E-typed tensor.
	// Autodiff emits it when broadcasting an aggregation's gradient back
	// onto edges; inside a fused kernel it is a free register read.
	OpEdgeView

	// Aggregations (the paper's A-typed operators).
	OpAgg     // Attr: AggOp; Dir: AggDir
	OpAggHier // hierarchical per-edge-type aggregation; Attr: InnerOp/OuterOp

	// Parameter-gradient reductions: dW = Σ_rows xᵀ g, producing TypeP.
	OpParamGradMM      // dW[in,out] = Σ xᵀ g
	OpParamGradMMTyped // per-edge-type dW[R,in,out], rows bucketed by type
)

var opNames = map[OpKind]string{
	OpLeaf: "Leaf",
	OpAdd:  "Add", OpSub: "Sub", OpMul: "Mul", OpDiv: "Div",
	OpNeg: "Neg", OpExp: "Exp", OpLog: "Log",
	OpLeakyReLU: "LeakyRelu", OpReLU: "Relu", OpSigmoid: "Sigmoid", OpTanh: "Tanh",
	OpMulConst: "MulConst", OpAddConst: "AddConst",
	OpMatMulP: "MatMul", OpMatMulPT: "MatMulT",
	OpMatMulTyped: "MatMulTyped", OpMatMulTypedT: "MatMulTypedT",
	OpLeakyReLUGrad: "LeakyReluGrad", OpReLUGrad: "ReluGrad",
	OpSigmoidGrad: "SigmoidGrad", OpTanhGrad: "TanhGrad",
	OpRowSum: "RowSum", OpEdgeView: "EdgeView",
	OpAgg: "Agg", OpAggHier: "AggHier",
	OpParamGradMM: "ParamGradMM", OpParamGradMMTyped: "ParamGradMMTyped",
}

// String names the operator as it appears in GIR listings.
func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsAgg reports whether the op is one of the A-typed aggregations.
func (k OpKind) IsAgg() bool { return k == OpAgg || k == OpAggHier }

// IsElementwise reports whether the op computes each output element from
// the matching elements of its inputs (fusible without index changes).
func (k OpKind) IsElementwise() bool {
	switch k {
	case OpAdd, OpSub, OpMul, OpDiv, OpNeg, OpExp, OpLog,
		OpLeakyReLU, OpReLU, OpSigmoid, OpTanh, OpMulConst, OpAddConst,
		OpLeakyReLUGrad, OpReLUGrad, OpSigmoidGrad, OpTanhGrad:
		return true
	}
	return false
}

// LeafKind says what a leaf node reads.
type LeafKind int

const (
	// LeafSrcFeat reads the neighbour (source) vertex's feature row.
	LeafSrcFeat LeafKind = iota
	// LeafDstFeat reads the center (destination) vertex's feature row.
	LeafDstFeat
	// LeafEdgeFeat reads the edge's feature row.
	LeafEdgeFeat
	// LeafParam reads a shared parameter tensor.
	LeafParam
	// LeafGrad is the incoming-gradient placeholder in a backward GIR;
	// its Key names the forward output it is the gradient of.
	LeafGrad
	// LeafSaved references a forward node's materialized (or recomputed)
	// value from within a backward GIR; Ref points at the forward node.
	LeafSaved
)

// String names the leaf kind (src, dst, edge, param, grad, saved).
func (k LeafKind) String() string {
	switch k {
	case LeafSrcFeat:
		return "src"
	case LeafDstFeat:
		return "dst"
	case LeafEdgeFeat:
		return "edge"
	case LeafParam:
		return "param"
	case LeafGrad:
		return "grad"
	case LeafSaved:
		return "saved"
	default:
		return fmt.Sprintf("LeafKind(%d)", int(k))
	}
}

// Attr carries operator attributes.
type Attr struct {
	Slope   float32 // LeakyReLU family
	C       float32 // MulConst / AddConst
	AggOp   AggKind // OpAgg
	InnerOp AggKind // OpAggHier: reduction within one edge type
	OuterOp AggKind // OpAggHier: reduction across edge types
}

// Node is one operator (or leaf) in a GIR DAG.
type Node struct {
	ID     int
	Op     OpKind
	Type   GraphType // graph type of the OUTPUT tensor
	Dir    AggDir    // meaningful when Op.IsAgg()
	Inputs []*Node
	Attr   Attr
	// Shape is the per-row feature shape (the paper strips the leading
	// batch dimension, §5.1); e.g. [16] for a 16-wide embedding.
	Shape []int

	// Leaf metadata (Op == OpLeaf).
	LeafKind LeafKind
	Key      string
	// Ref points at the forward node whose value a LeafSaved reads.
	Ref *Node
}

// Dim returns the flat per-row width of the node's value.
func (n *Node) Dim() int {
	d := 1
	for _, s := range n.Shape {
		d *= s
	}
	return d
}

// String renders the node as one GIR listing line: id, op, graph type,
// inputs and per-row shape.
func (n *Node) String() string {
	if n.Op == OpLeaf {
		if n.LeafKind == LeafSaved && n.Ref != nil {
			return fmt.Sprintf("%%%d = Leaf<%s>(saved fwd %%%d %s)%v", n.ID, n.Type, n.Ref.ID, n.Ref.Op, n.Shape)
		}
		return fmt.Sprintf("%%%d = Leaf<%s>(%s:%q)%v", n.ID, n.Type, n.LeafKind, n.Key, n.Shape)
	}
	s := fmt.Sprintf("%%%d = %s<%s>(", n.ID, n.Op, n.Type)
	for i, in := range n.Inputs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%%%d", in.ID)
	}
	s += fmt.Sprintf(")%v", n.Shape)
	if n.Op.IsAgg() {
		s += " " + n.Dir.String()
	}
	return s
}

package gir

import (
	"fmt"
	"sort"
	"strings"
)

// DAG is a traced (or derived) GIR computational graph. Nodes is in
// topological order: every node appears after all of its inputs.
type DAG struct {
	Nodes   []*Node
	Outputs []*Node
}

func newDAG(b *Builder, outputs []*Node) *DAG {
	return &DAG{Nodes: b.nodes, Outputs: outputs}
}

// NewDAG builds a DAG from explicit nodes, dropping nodes unreachable
// from the outputs. Surviving nodes keep their relative order (by prior
// ID) — construction order is the paper's tracing order, which the fusion
// FSM's last-write-wins tie-break depends on — and are then re-numbered.
// It is used by the autodiff engine and by optimizer passes when they
// rewrite graphs.
func NewDAG(outputs []*Node) *DAG {
	seen := make(map[*Node]bool)
	var order []*Node
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs {
			visit(in)
		}
		order = append(order, n)
	}
	for _, o := range outputs {
		visit(o)
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].ID < order[j].ID })
	for i, n := range order {
		n.ID = i
	}
	return &DAG{Nodes: order, Outputs: outputs}
}

// Prune returns a copy of d containing only nodes reachable from the
// outputs (dead-code elimination's core step). Node objects are shared.
func (d *DAG) Prune() *DAG { return NewDAG(d.Outputs) }

// Consumers maps each node to the nodes that take it as input.
func (d *DAG) Consumers() map[*Node][]*Node {
	c := make(map[*Node][]*Node, len(d.Nodes))
	for _, n := range d.Nodes {
		for _, in := range n.Inputs {
			c[in] = append(c[in], n)
		}
	}
	return c
}

// Leaves returns all leaf nodes in order.
func (d *DAG) Leaves() []*Node {
	var out []*Node
	for _, n := range d.Nodes {
		if n.Op == OpLeaf {
			out = append(out, n)
		}
	}
	return out
}

// ParamKeys returns the distinct parameter keys referenced, in first-use
// order.
func (d *DAG) ParamKeys() []string {
	var keys []string
	seen := map[string]bool{}
	for _, n := range d.Nodes {
		if n.Op == OpLeaf && n.LeafKind == LeafParam && !seen[n.Key] {
			seen[n.Key] = true
			keys = append(keys, n.Key)
		}
	}
	return keys
}

// FeatureKeys returns the distinct vertex-feature (src/dst) and
// edge-feature keys referenced.
func (d *DAG) FeatureKeys() (vertex, edge []string) {
	seenV, seenE := map[string]bool{}, map[string]bool{}
	for _, n := range d.Nodes {
		if n.Op != OpLeaf {
			continue
		}
		switch n.LeafKind {
		case LeafSrcFeat, LeafDstFeat:
			if !seenV[n.Key] {
				seenV[n.Key] = true
				vertex = append(vertex, n.Key)
			}
		case LeafEdgeFeat:
			if !seenE[n.Key] {
				seenE[n.Key] = true
				edge = append(edge, n.Key)
			}
		}
	}
	return vertex, edge
}

// Validate checks DAG invariants: topological order, output membership,
// aggregation typing, and leaf well-formedness.
func (d *DAG) Validate() error {
	pos := make(map[*Node]int, len(d.Nodes))
	for i, n := range d.Nodes {
		pos[n] = i
	}
	for i, n := range d.Nodes {
		for _, in := range n.Inputs {
			j, ok := pos[in]
			if !ok {
				return fmt.Errorf("gir: node %%%d has input outside the DAG", n.ID)
			}
			if j >= i {
				return fmt.Errorf("gir: node %%%d not topologically after input %%%d", n.ID, in.ID)
			}
		}
		if n.Op.IsAgg() && n.Type != n.Dir.OutType() {
			return fmt.Errorf("gir: aggregation %%%d direction %s but type %s", n.ID, n.Dir, n.Type)
		}
		if n.Op == OpLeaf && len(n.Inputs) != 0 {
			return fmt.Errorf("gir: leaf %%%d has inputs", n.ID)
		}
		if n.Op != OpLeaf && len(n.Inputs) == 0 {
			return fmt.Errorf("gir: operator %%%d has no inputs", n.ID)
		}
	}
	for _, o := range d.Outputs {
		if _, ok := pos[o]; !ok {
			return fmt.Errorf("gir: output %%%d not in DAG", o.ID)
		}
	}
	return nil
}

// String renders the DAG one node per line, in the style of Figure 6.
func (d *DAG) String() string {
	var b strings.Builder
	for _, n := range d.Nodes {
		b.WriteString(n.String())
		b.WriteByte('\n')
	}
	b.WriteString("outputs:")
	for _, o := range d.Outputs {
		fmt.Fprintf(&b, " %%%d", o.ID)
	}
	b.WriteByte('\n')
	return b.String()
}

package gir

import "fmt"

// TraceError reports an invalid vertex-centric program (unknown feature,
// shape mismatch, illegal op for a graph type). The tracer panics with it
// internally; Build converts the panic into an error.
type TraceError struct{ Msg string }

// Error implements the error interface.
func (e *TraceError) Error() string { return "gir: " + e.Msg }

func fail(format string, args ...interface{}) {
	panic(&TraceError{Msg: fmt.Sprintf(format, args...)})
}

// Builder records the nodes a vertex-centric UDF creates, playing the role
// of the paper's operator-overloading tracer (§5.1). Feature and parameter
// dimensions are registered up front; actual tensors are bound by key at
// execution time.
type Builder struct {
	nodes  []*Node
	nextID int

	vFeat map[string][]int // per-vertex feature shapes
	eFeat map[string][]int // per-edge feature shapes
	pDims map[string][]int // parameter shapes
}

// NewBuilder creates an empty tracer.
func NewBuilder() *Builder {
	return &Builder{
		vFeat: make(map[string][]int),
		eFeat: make(map[string][]int),
		pDims: make(map[string][]int),
	}
}

// VFeature registers a per-vertex feature with the given per-row shape
// (the batching first dimension is implicit, as in the paper's
// v_feature dictionary).
func (b *Builder) VFeature(key string, shape ...int) {
	b.vFeat[key] = append([]int(nil), shape...)
}

// EFeature registers a per-edge feature.
func (b *Builder) EFeature(key string, shape ...int) {
	b.eFeat[key] = append([]int(nil), shape...)
}

// Param registers a parameter tensor and returns its P-typed leaf value.
func (b *Builder) Param(key string, shape ...int) *Value {
	b.pDims[key] = append([]int(nil), shape...)
	n := b.newNode(OpLeaf, TypeP, nil, shape)
	n.LeafKind = LeafParam
	n.Key = key
	return &Value{b: b, n: n}
}

func (b *Builder) newNode(op OpKind, t GraphType, inputs []*Node, shape []int) *Node {
	n := &Node{
		ID:     b.nextID,
		Op:     op,
		Type:   t,
		Inputs: inputs,
		Shape:  append([]int(nil), shape...),
	}
	b.nextID++
	b.nodes = append(b.nodes, n)
	return n
}

// Vertex returns the symbolic center vertex passed to the UDF.
func (b *Builder) Vertex() *Vertex { return &Vertex{b: b} }

// Vertex is the symbolic center vertex v of the vertex-centric program.
// Nbr accesses an in-neighbour's view of a feature (graph type S), Self
// the center's own view (graph type D), and Edge an in-edge feature
// (graph type E) — mirroring u.key / v.key / e.key in the paper's Python.
type Vertex struct{ b *Builder }

// Nbr returns the in-neighbour u's feature (S-typed).
func (v *Vertex) Nbr(key string) *Value {
	shape, ok := v.b.vFeat[key]
	if !ok {
		fail("unknown vertex feature %q (register with VFeature)", key)
	}
	n := v.b.newNode(OpLeaf, TypeS, nil, shape)
	n.LeafKind = LeafSrcFeat
	n.Key = key
	return &Value{b: v.b, n: n}
}

// Self returns the center vertex's own feature (D-typed).
func (v *Vertex) Self(key string) *Value {
	shape, ok := v.b.vFeat[key]
	if !ok {
		fail("unknown vertex feature %q (register with VFeature)", key)
	}
	n := v.b.newNode(OpLeaf, TypeD, nil, shape)
	n.LeafKind = LeafDstFeat
	n.Key = key
	return &Value{b: v.b, n: n}
}

// Edge returns an in-edge feature (E-typed).
func (v *Vertex) Edge(key string) *Value {
	shape, ok := v.b.eFeat[key]
	if !ok {
		fail("unknown edge feature %q (register with EFeature)", key)
	}
	n := v.b.newNode(OpLeaf, TypeE, nil, shape)
	n.LeafKind = LeafEdgeFeat
	n.Key = key
	return &Value{b: v.b, n: n}
}

// Value is a symbolic tensor flowing through the traced program; its
// fluent methods stand in for Python operator overloading.
type Value struct {
	b *Builder
	n *Node
}

// Node exposes the underlying GIR node (for inspection and tests).
func (v *Value) Node() *Node { return v.n }

// Type returns the value's graph type.
func (v *Value) Type() GraphType { return v.n.Type }

// inferBinaryType applies the paper's graph-type inference rules 2–4
// (§5.1) to a binary elementwise op.
func inferBinaryType(a, b GraphType) GraphType {
	if a == TypeP {
		return b // rule 4
	}
	if b == TypeP {
		return a
	}
	if a == b {
		return a // rule 2 (degenerate: same type)
	}
	return TypeE // rule 3: mixed S/D/E
}

// broadcastShape merges two per-row shapes: equal shapes pass through and
// a scalar [1] (or []) broadcasts against anything.
func broadcastShape(a, b []int) []int {
	flat := func(s []int) int {
		d := 1
		for _, x := range s {
			d *= x
		}
		return d
	}
	da, db := flat(a), flat(b)
	switch {
	case da == db:
		return a
	case da == 1:
		return b
	case db == 1:
		return a
	default:
		fail("shape mismatch in elementwise op: %v vs %v", a, b)
		return nil
	}
}

func (v *Value) binary(op OpKind, o *Value) *Value {
	if v.b != o.b {
		fail("values from different builders combined")
	}
	t := inferBinaryType(v.n.Type, o.n.Type)
	shape := broadcastShape(v.n.Shape, o.n.Shape)
	n := v.b.newNode(op, t, []*Node{v.n, o.n}, shape)
	return &Value{b: v.b, n: n}
}

func (v *Value) unary(op OpKind, attr Attr) *Value {
	n := v.b.newNode(op, v.n.Type, []*Node{v.n}, v.n.Shape)
	n.Attr = attr
	return &Value{b: v.b, n: n}
}

// Add returns v + o.
func (v *Value) Add(o *Value) *Value { return v.binary(OpAdd, o) }

// Sub returns v - o.
func (v *Value) Sub(o *Value) *Value { return v.binary(OpSub, o) }

// Mul returns the elementwise product v * o.
func (v *Value) Mul(o *Value) *Value { return v.binary(OpMul, o) }

// Div returns v / o.
func (v *Value) Div(o *Value) *Value { return v.binary(OpDiv, o) }

// Neg returns -v.
func (v *Value) Neg() *Value { return v.unary(OpNeg, Attr{}) }

// Exp returns e^v.
func (v *Value) Exp() *Value { return v.unary(OpExp, Attr{}) }

// Log returns ln(v).
func (v *Value) Log() *Value { return v.unary(OpLog, Attr{}) }

// LeakyReLU returns v>0 ? v : slope*v.
func (v *Value) LeakyReLU(slope float32) *Value {
	return v.unary(OpLeakyReLU, Attr{Slope: slope})
}

// ReLU returns max(0, v).
func (v *Value) ReLU() *Value { return v.unary(OpReLU, Attr{}) }

// Sigmoid returns the logistic function of v.
func (v *Value) Sigmoid() *Value { return v.unary(OpSigmoid, Attr{}) }

// Tanh returns tanh(v).
func (v *Value) Tanh() *Value { return v.unary(OpTanh, Attr{}) }

// MulScalar returns v * c for a compile-time constant c.
func (v *Value) MulScalar(c float32) *Value { return v.unary(OpMulConst, Attr{C: c}) }

// AddScalar returns v + c.
func (v *Value) AddScalar(c float32) *Value { return v.unary(OpAddConst, Attr{C: c}) }

// RowSum reduces the per-row feature vector to a scalar: [d] -> [1].
func (v *Value) RowSum() *Value {
	n := v.b.newNode(OpRowSum, v.n.Type, []*Node{v.n}, []int{1})
	return &Value{b: v.b, n: n}
}

// MatMul multiplies the per-row vector by a P-typed weight: [in]@[in,out].
func (v *Value) MatMul(w *Value) *Value {
	if w.n.Type != TypeP {
		fail("MatMul weight must be a parameter, got %s", w.n.Type)
	}
	if len(w.n.Shape) != 2 {
		fail("MatMul weight must be 2-D, got %v", w.n.Shape)
	}
	if v.n.Dim() != w.n.Shape[0] {
		fail("MatMul dims: value %v vs weight %v", v.n.Shape, w.n.Shape)
	}
	n := v.b.newNode(OpMatMulP, v.n.Type, []*Node{v.n, w.n}, []int{w.n.Shape[1]})
	return &Value{b: v.b, n: n}
}

// MatMulTyped multiplies by the weight slice selected by the edge's type:
// w has shape [R, in, out]. The result is edge-dependent, hence E-typed.
func (v *Value) MatMulTyped(w *Value) *Value {
	if w.n.Type != TypeP {
		fail("MatMulTyped weight must be a parameter, got %s", w.n.Type)
	}
	if len(w.n.Shape) != 3 {
		fail("MatMulTyped weight must be [R,in,out], got %v", w.n.Shape)
	}
	if v.n.Type == TypeD {
		fail("MatMulTyped input must be source- or edge-typed")
	}
	if v.n.Dim() != w.n.Shape[1] {
		fail("MatMulTyped dims: value %v vs weight %v", v.n.Shape, w.n.Shape)
	}
	n := v.b.newNode(OpMatMulTyped, TypeE, []*Node{v.n, w.n}, []int{w.n.Shape[2]})
	return &Value{b: v.b, n: n}
}

// aggregate creates an A-typed node per the paper's rule 1: aggregating
// S- or E-typed values in the forward direction yields a D-typed result.
func (v *Value) aggregate(kind AggKind) *Value {
	if v.n.Type == TypeP {
		fail("cannot aggregate a parameter")
	}
	n := v.b.newNode(OpAgg, TypeD, []*Node{v.n}, v.n.Shape)
	n.Dir = AggToDst
	n.Attr = Attr{AggOp: kind}
	return &Value{b: v.b, n: n}
}

// AggSum sums the value over the center vertex's in-edges (A:D).
func (v *Value) AggSum() *Value { return v.aggregate(AggSum) }

// AggMax takes the maximum over in-edges (forward-only: no gradient).
func (v *Value) AggMax() *Value { return v.aggregate(AggMax) }

// AggMin takes the minimum over in-edges (forward-only: no gradient).
func (v *Value) AggMin() *Value { return v.aggregate(AggMin) }

// AggMean averages over in-edges (forward-only; use AggSum with an
// explicit 1/deg feature when training).
func (v *Value) AggMean() *Value { return v.aggregate(AggMean) }

// AggHier performs the heterogeneous hierarchical aggregation of §6.3.5:
// inner reduces edges of the same type, outer reduces across types. When
// both are Sum it is mathematically a flat AggSum but exercises the
// type-sorted sequential kernel.
func (v *Value) AggHier(inner, outer AggKind) *Value {
	if v.n.Type == TypeP {
		fail("cannot aggregate a parameter")
	}
	n := v.b.newNode(OpAggHier, TypeD, []*Node{v.n}, v.n.Shape)
	n.Dir = AggToDst
	n.Attr = Attr{InnerOp: inner, OuterOp: outer}
	return &Value{b: v.b, n: n}
}

// UDF is a vertex-centric user-defined function: the program of a single
// center vertex, as in the paper's @Seastar.compile decorator.
type UDF func(v *Vertex) *Value

// Build traces udf through b and returns the resulting forward DAG. Trace
// errors (unknown features, shape mismatches, illegal ops) are returned,
// not panicked.
func (b *Builder) Build(udf UDF) (dag *DAG, err error) {
	defer func() {
		if r := recover(); r != nil {
			if te, ok := r.(*TraceError); ok {
				err = te
				return
			}
			panic(r)
		}
	}()
	out := udf(b.Vertex())
	if out == nil {
		return nil, &TraceError{Msg: "UDF returned nil"}
	}
	if out.n.Type != TypeD {
		return nil, &TraceError{Msg: fmt.Sprintf(
			"UDF must return a destination-typed value (one row per center vertex); got %s — aggregate with AggSum", out.n.Type)}
	}
	return newDAG(b, []*Node{out.n}), nil
}

package exec

import (
	"fmt"

	"seastar/internal/device"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/nn"
	"seastar/internal/obs"
	"seastar/internal/tensor"
)

// Runtime binds a compiled UDF to a device (through the nn engine), a
// graph, and a kernel configuration.
type Runtime struct {
	G   *graph.Graph
	Cfg kernels.Config
	E   *nn.Engine

	// pool recycles the storage of eager-freed backward intermediates
	// (§5.3) across launches and iterations, so the steady-state
	// training step re-allocates none of them.
	pool *tensor.Pool
}

// NewRuntime creates a runtime with the default (full-Seastar) kernel
// configuration.
func NewRuntime(e *nn.Engine, g *graph.Graph) *Runtime {
	return &Runtime{G: g, Cfg: kernels.DefaultConfig(), E: e, pool: tensor.NewPool()}
}

// PoolStats reports the intermediate-tensor pool's lifetime hit/miss
// counts (diagnostics and tests).
func (rt *Runtime) PoolStats() (hits, misses int64) {
	if rt.pool == nil {
		return 0, 0
	}
	return rt.pool.Stats()
}

// Apply executes the compiled UDF as an autograd function over the given
// named variables, returning the [N, d] output variable. Missing inputs
// are an error; extra entries are ignored.
func (c *CompiledUDF) Apply(rt *Runtime, vfeat, efeat, params map[string]*nn.Variable) (*nn.Variable, error) {
	if c.Grads == nil {
		return nil, fmt.Errorf("exec: Apply on an inference-only compilation (use Infer, or compile without Options.InferenceOnly)")
	}
	inputs := make([]*nn.Variable, len(c.Inputs))
	for i, spec := range c.Inputs {
		var m map[string]*nn.Variable
		switch spec.Kind {
		case InVFeat:
			m = vfeat
		case InEFeat:
			m = efeat
		default:
			m = params
		}
		v, ok := m[spec.Key]
		if !ok {
			return nil, fmt.Errorf("exec: missing %s input %q", spec.Kind, spec.Key)
		}
		inputs[i] = v
	}
	fn := &udfFunction{c: c, rt: rt, needGrad: make([]bool, len(inputs))}
	for i, v := range inputs {
		fn.needGrad[i] = v.RequiresGrad
	}
	return rt.E.Apply(fn, "seastar.udf", inputs...), nil
}

// udfFunction is the nn.Function wrapping one Apply invocation.
type udfFunction struct {
	c        *CompiledUDF
	rt       *Runtime
	needGrad []bool

	fwdBind *kernels.Bindings // kept alive for the backward pass
	// bufs maps materialized nodes to their device buffers — and, for
	// pool-allocated tensors, the host storage — so the backward pass
	// can free intermediates eagerly (§5.3) and recycle their memory.
	bufs map[*gir.Node]matBuf
}

// matBuf pairs a materialized node's device accounting handle with its
// host tensor (nil when the tensor did not come from the pool).
type matBuf struct {
	buf *device.Buffer
	t   *tensor.Tensor
}

func (f *udfFunction) bindingsFrom(vals []*tensor.Tensor) *kernels.Bindings {
	b := &kernels.Bindings{
		VFeat:  map[string]*tensor.Tensor{},
		EFeat:  map[string]*tensor.Tensor{},
		Params: map[string]*tensor.Tensor{},
		Inter:  map[*gir.Node]*tensor.Tensor{},
	}
	for i, spec := range f.c.Inputs {
		switch spec.Kind {
		case InVFeat:
			b.VFeat[spec.Key] = vals[i]
		case InEFeat:
			b.EFeat[spec.Key] = vals[i]
		default:
			b.Params[spec.Key] = vals[i]
		}
	}
	return b
}

// allocOut creates (and charges) the output tensor for a materialized
// node, remembering its buffer for eager freeing. Storage is drawn from
// the runtime's free list, so in steady state this recycles the buffers
// released by the previous iteration's backward pass.
func (f *udfFunction) allocOut(n *gir.Node) *tensor.Tensor {
	var t *tensor.Tensor
	switch n.Type {
	case gir.TypeE:
		t = f.poolGet(append([]int{f.rt.G.M}, n.Shape...)...)
	case gir.TypeP:
		t = f.poolGet(n.Shape...)
	default:
		t = f.poolGet(append([]int{f.rt.G.N}, n.Shape...)...)
	}
	f.record(n, matBuf{buf: f.rt.E.AllocBytesHandle(int64(t.Size()) * 4), t: t})
	return t
}

func (f *udfFunction) poolGet(shape ...int) *tensor.Tensor {
	if f.rt.pool == nil {
		return tensor.New(shape...)
	}
	return f.rt.pool.Get(shape...)
}

// runUnit dispatches one execution unit.
func (f *udfFunction) runUnit(u *fusion.Unit, kern *kernels.Kernel, mat []*gir.Node, b *kernels.Bindings) error {
	switch u.Kind {
	case fusion.KindSeastar:
		outs := make(map[*gir.Node]*tensor.Tensor, len(mat))
		for _, m := range mat {
			outs[m] = f.allocOut(m)
		}
		if err := kern.Run(f.rt.E.Dev, f.rt.G, f.rt.Cfg, b, outs); err != nil {
			return err
		}
		for n, t := range outs {
			b.Inter[n] = t
		}
		return nil
	case fusion.KindDense:
		return f.runDense(u, b)
	case fusion.KindParamGrad:
		return f.runParamGrad(u, b)
	default:
		return fmt.Errorf("exec: unknown unit kind %v", u.Kind)
	}
}

func (f *udfFunction) runDense(u *fusion.Unit, b *kernels.Bindings) error {
	for _, n := range u.Nodes {
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			t, err := b.Resolve(in)
			if err != nil {
				return err
			}
			ins[i] = t
		}
		var out *tensor.Tensor
		switch n.Op {
		case gir.OpMatMulP:
			out = tensor.MatMul(ins[0], ins[1])
			f.rt.E.ChargeDense("dense.matmul",
				float64(ins[0].Rows())*float64(ins[1].Rows())*float64(ins[1].Cols()),
				int64(ins[0].Size()+ins[1].Size())*4, int64(out.Size())*4)
		case gir.OpMatMulPT:
			out = tensor.MatMulT(ins[0], ins[1]) // g @ Wᵀ
			f.rt.E.ChargeDense("dense.matmulT",
				float64(ins[0].Rows())*float64(ins[1].Rows())*float64(ins[1].Cols()),
				int64(ins[0].Size()+ins[1].Size())*4, int64(out.Size())*4)
		default:
			// P-typed elementwise ops: whole-tensor backend kernels
			// (gradient accumulation between parameter-gradient units,
			// scaling, and the like).
			var err error
			out, err = denseElementwise(n, ins)
			if err != nil {
				return err
			}
			f.rt.E.ChargeDense("dense."+n.Op.String(), float64(out.Size()),
				int64(out.Size())*8, int64(out.Size())*4)
		}
		f.recordBuf(n, f.rt.E.AllocBytesHandle(int64(out.Size())*4))
		b.Inter[n] = out
	}
	return nil
}

// record remembers a materialized node's buffers for eager freeing.
func (f *udfFunction) record(n *gir.Node, mb matBuf) {
	if mb.buf == nil && mb.t == nil {
		return
	}
	if f.bufs == nil {
		f.bufs = make(map[*gir.Node]matBuf)
	}
	f.bufs[n] = mb
}

// recordBuf remembers a device-only buffer (no pooled host storage).
func (f *udfFunction) recordBuf(n *gir.Node, buf *device.Buffer) {
	f.record(n, matBuf{buf: buf})
}

// denseElementwise evaluates a P-typed elementwise operator on whole
// tensors.
func denseElementwise(n *gir.Node, ins []*tensor.Tensor) (*tensor.Tensor, error) {
	switch n.Op {
	case gir.OpAdd:
		return tensor.Add(ins[0], ins[1]), nil
	case gir.OpSub:
		return tensor.Sub(ins[0], ins[1]), nil
	case gir.OpMul:
		return tensor.Mul(ins[0], ins[1]), nil
	case gir.OpDiv:
		return tensor.Div(ins[0], ins[1]), nil
	case gir.OpNeg:
		return tensor.MulScalar(ins[0], -1), nil
	case gir.OpMulConst:
		return tensor.MulScalar(ins[0], n.Attr.C), nil
	case gir.OpAddConst:
		return tensor.AddScalar(ins[0], n.Attr.C), nil
	case gir.OpExp:
		return tensor.Exp(ins[0]), nil
	case gir.OpLog:
		return tensor.Log(ins[0]), nil
	case gir.OpSigmoid:
		return tensor.Sigmoid(ins[0]), nil
	case gir.OpTanh:
		return tensor.Tanh(ins[0]), nil
	case gir.OpReLU:
		return tensor.ReLU(ins[0]), nil
	case gir.OpLeakyReLU:
		return tensor.LeakyReLU(ins[0], n.Attr.Slope), nil
	default:
		return nil, fmt.Errorf("exec: dense unit cannot run %s", n.Op)
	}
}

// runParamGrad executes dW = Σ xᵀ g reductions. Vertex-typed operands
// reduce with a dense GEMM; edge-typed gradients walk the edge list
// (accumulating per relation for the typed variant).
func (f *udfFunction) runParamGrad(u *fusion.Unit, b *kernels.Bindings) error {
	for _, n := range u.Nodes {
		xNode, gNode := n.Inputs[0], n.Inputs[1]
		x, err := b.Resolve(xNode)
		if err != nil {
			return err
		}
		gT, err := b.Resolve(gNode)
		if err != nil {
			return err
		}
		var out *tensor.Tensor
		switch n.Op {
		case gir.OpParamGradMM:
			if xNode.Type != gir.TypeE && gNode.Type != gir.TypeE {
				out = tensor.TMatMul(x, gT)
			} else {
				out = f.edgeParamGrad(xNode, gNode, x, gT, n.Shape, false)
			}
		case gir.OpParamGradMMTyped:
			out = f.edgeParamGrad(xNode, gNode, x, gT, n.Shape, true)
		default:
			return fmt.Errorf("exec: paramgrad unit cannot run %s", n.Op)
		}
		out = out.Reshape(n.Shape...)
		rows := f.rt.G.M
		if xNode.Type != gir.TypeE && gNode.Type != gir.TypeE {
			rows = x.Rows()
		}
		din := n.Shape[len(n.Shape)-2]
		dout := n.Shape[len(n.Shape)-1]
		f.rt.E.ChargeDense("paramgrad",
			float64(rows)*float64(din)*float64(dout),
			int64(x.Size()+gT.Size())*4, int64(out.Size())*4*2)
		f.recordBuf(n, f.rt.E.AllocBytesHandle(int64(out.Size())*4))
		b.Inter[n] = out
	}
	return nil
}

// edgeParamGrad accumulates per-edge outer products xᵀg into a weight
// gradient; with typed=true the edge's relation selects the slice.
func (f *udfFunction) edgeParamGrad(xNode, gNode *gir.Node, x, g *tensor.Tensor, wShape []int, typed bool) *tensor.Tensor {
	gg := f.rt.G
	din := wShape[len(wShape)-2]
	dout := wShape[len(wShape)-1]
	out := tensor.New(wShape...)
	od := out.Data()
	rowFor := func(n *gir.Node, t *tensor.Tensor, src, dst, eid int) []float32 {
		typ := n.Type
		if n.Op == gir.OpLeaf && n.LeafKind == gir.LeafSaved {
			typ = n.Ref.Type
		}
		switch typ {
		case gir.TypeS:
			return t.Row(src)
		case gir.TypeD:
			return t.Row(dst)
		default:
			return t.Row(eid)
		}
	}
	for e := 0; e < gg.M; e++ {
		src, dst := int(gg.Srcs[e]), int(gg.Dsts[e])
		xr := rowFor(xNode, x, src, dst, e)
		gr := rowFor(gNode, g, src, dst, e)
		base := 0
		if typed {
			base = int(gg.EdgeTypes[e]) * din * dout
		}
		for i := 0; i < din; i++ {
			xi := xr[i]
			if xi == 0 {
				continue
			}
			row := od[base+i*dout : base+(i+1)*dout]
			for o := 0; o < dout; o++ {
				row[o] += xi * gr[o]
			}
		}
	}
	return out
}

// Forward runs the forward plan's units in order.
func (f *udfFunction) Forward(ctx *nn.FuncCtx, inputs ...*tensor.Tensor) *tensor.Tensor {
	b := f.bindingsFrom(inputs)
	for i, u := range f.c.FwdPlan.Units {
		sp := obs.Begin("exec", f.c.fwdLabels[i])
		err := f.runUnit(u, f.c.fwdKern[u], f.c.fwdMat[u], b)
		sp.End()
		if err != nil {
			panic(fmt.Errorf("exec: forward unit %d: %w", u.ID, err))
		}
	}
	f.reportPool()
	f.fwdBind = b
	out, err := b.Resolve(f.c.Fwd.Outputs[0])
	if err != nil {
		panic(err)
	}
	return out
}

// Backward runs only the backward units needed for the inputs that
// require gradients (the DL backend's requires-grad pruning).
func (f *udfFunction) Backward(ctx *nn.FuncCtx, gradOut *tensor.Tensor) []*tensor.Tensor {
	c := f.c
	needOut := make(map[*gir.Node]bool)
	for i := range c.Grads.LeafOrder {
		if f.needGrad[c.leafInput[i]] {
			needOut[c.Grads.DAG.Outputs[i]] = true
		}
	}
	grads := make([]*tensor.Tensor, len(c.Inputs))
	if len(needOut) == 0 {
		return grads
	}

	// Transitively mark needed units, walking the unit list backwards.
	// Seastar units report their true external reads (recompute inlining
	// can pull in dependencies that are not direct node inputs, and skip
	// direct inputs it re-derives in registers).
	needUnit := make(map[*fusion.Unit]bool)
	needNode := needOut
	for i := len(c.BwdPlan.Units) - 1; i >= 0; i-- {
		u := c.BwdPlan.Units[i]
		needed := false
		for _, m := range c.bwdMat[u] {
			if needNode[m] {
				needed = true
			}
		}
		if !needed {
			continue
		}
		needUnit[u] = true
		if kern := c.bwdKern[u]; kern != nil {
			for _, in := range kern.ExternalReads() {
				needNode[in] = true
			}
			continue
		}
		for _, n := range u.Nodes {
			for _, in := range n.Inputs {
				if in.Op != gir.OpLeaf && c.BwdPlan.UnitOf(in) != u {
					needNode[in] = true
				}
			}
		}
	}

	b := f.bindingsFrom(inputsOf(f.fwdBind, c))
	b.Grad = gradOut
	b.Saved = map[*gir.Node]*tensor.Tensor{}
	for _, s := range c.saved {
		t, ok := f.fwdBind.Inter[s]
		if !ok {
			panic(fmt.Errorf("exec: saved forward value %%%d missing", s.ID))
		}
		b.Saved[s] = t
	}
	// Eager freeing (§5.3): count, over the units that will actually
	// run, how many still read each backward intermediate; free a
	// buffer the moment its last reader finishes. Gradient outputs are
	// excluded (they are returned to the caller).
	readsOf := func(u *fusion.Unit) []*gir.Node {
		if kern := c.bwdKern[u]; kern != nil {
			return kern.ExternalReads()
		}
		var out []*gir.Node
		for _, n := range u.Nodes {
			for _, in := range n.Inputs {
				if in.Op != gir.OpLeaf && c.BwdPlan.UnitOf(in) != u {
					out = append(out, in)
				}
			}
		}
		return out
	}
	readers := make(map[*gir.Node]int)
	for _, u := range c.BwdPlan.Units {
		if !needUnit[u] {
			continue
		}
		for _, n := range readsOf(u) {
			readers[n]++
		}
	}
	keep := make(map[*gir.Node]bool)
	for i := range c.Grads.LeafOrder {
		if f.needGrad[c.leafInput[i]] {
			keep[c.Grads.DAG.Outputs[i]] = true
		}
	}

	for i, u := range c.BwdPlan.Units {
		if !needUnit[u] {
			continue
		}
		sp := obs.Begin("exec", c.bwdLabels[i])
		err := f.runUnit(u, f.c.bwdKern[u], f.c.bwdMat[u], b)
		sp.End()
		if err != nil {
			panic(fmt.Errorf("exec: backward unit %d: %w", u.ID, err))
		}
		for _, n := range readsOf(u) {
			readers[n]--
			if readers[n] == 0 && !keep[n] {
				if mb, ok := f.bufs[n]; ok {
					if mb.buf != nil {
						mb.buf.Free()
					}
					// Recycle the host storage: only backward-DAG
					// intermediates reach this point (forward values
					// resolve through LeafSaved leaves, which readsOf
					// excludes), so nothing reads the tensor again.
					if mb.t != nil && f.rt.pool != nil {
						f.rt.pool.Put(mb.t)
					}
					delete(f.bufs, n)
				}
			}
		}
	}

	f.reportPool()
	for i := range c.Grads.LeafOrder {
		idx := c.leafInput[i]
		if !f.needGrad[idx] {
			continue
		}
		gnode := c.Grads.DAG.Outputs[i]
		// Resolve handles the degenerate case where a leaf's gradient
		// is the seed itself (a UDF returning a bare Self feature).
		t, err := b.Resolve(gnode)
		if err != nil {
			panic(fmt.Errorf("exec: gradient output %%%d not materialized: %w", gnode.ID, err))
		}
		if grads[idx] == nil {
			grads[idx] = t.Clone()
		} else {
			tensor.AddInPlace(grads[idx], t)
		}
	}
	return grads
}

// reportPool publishes the runtime pool's lifetime hit/miss counters to
// the obs registry (no-op with tracing disabled).
func (f *udfFunction) reportPool() {
	if !obs.Enabled() || f.rt.pool == nil {
		return
	}
	hits, misses := f.rt.pool.Stats()
	obs.Set("exec", "pool", "hits", hits)
	obs.Set("exec", "pool", "misses", misses)
}

// inputsOf reconstructs the ordered input tensors from the forward
// bindings (they are the same objects passed to Forward).
func inputsOf(b *kernels.Bindings, c *CompiledUDF) []*tensor.Tensor {
	vals := make([]*tensor.Tensor, len(c.Inputs))
	for i, spec := range c.Inputs {
		switch spec.Kind {
		case InVFeat:
			vals[i] = b.VFeat[spec.Key]
		case InEFeat:
			vals[i] = b.EFeat[spec.Key]
		default:
			vals[i] = b.Params[spec.Key]
		}
	}
	return vals
}

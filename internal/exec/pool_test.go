package exec

import (
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// TestPoolRecyclesBackwardIntermediates trains a GAT-style program for a
// few iterations and checks that eager-freed backward intermediates
// (§5.3) are served from the runtime's free list after warm-up, and that
// recycling does not change the numbers.
func TestPoolRecyclesBackwardIntermediates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.PowerLaw(rng, 60, 4).SortByDegree()
	c := compileGAT(t, 8)
	dev := device.New(device.V100)
	e := nn.NewEngine(dev)
	rt := NewRuntime(e, g)
	eu := e.Param(tensor.Randn(rng, 1, 60, 1), "eu")
	ev := e.Param(tensor.Randn(rng, 1, 60, 1), "ev")
	h := e.Param(tensor.Randn(rng, 1, 60, 8), "h")

	var warmGrad *tensor.Tensor
	for it := 0; it < 3; it++ {
		out, err := c.Apply(rt,
			map[string]*nn.Variable{"eu": eu, "ev": ev, "h": h}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.Backward(e.SumAll(e.Sigmoid(out)))
		if it == 0 {
			warmGrad = h.Grad.Clone()
		} else if !tensor.AllClose(h.Grad, warmGrad, 1e-6) {
			// Same inputs every iteration (no optimizer step), so pooled
			// buffers must reproduce the first iteration exactly.
			t.Fatalf("iteration %d: gradients drifted after pooling (max diff %g)",
				it, tensor.MaxAbsDiff(h.Grad, warmGrad))
		}
		eu.ZeroGrad()
		ev.ZeroGrad()
		h.ZeroGrad()
		e.EndIteration()
	}
	hits, misses := rt.PoolStats()
	if hits == 0 {
		t.Fatalf("pool never reused a buffer (hits=0, misses=%d)", misses)
	}
	t.Logf("pool hits=%d misses=%d", hits, misses)
}

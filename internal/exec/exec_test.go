package exec

import (
	"math"
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

func compileGCN(t *testing.T, in, out int) *CompiledUDF {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("h", in)
	b.VFeature("norm", 1)
	W := b.Param("W", in, out)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(dag)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func compileGAT(t *testing.T, dim int) *CompiledUDF {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("eu", 1)
	b.VFeature("ev", 1)
	b.VFeature("h", dim)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
		a := e.Div(e.AggSum())
		return a.Mul(v.Nbr("h")).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(dag)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// scalarLoss runs the UDF and reduces the output through a nonlinearity so
// gradients are non-trivial.
func scalarLoss(t *testing.T, c *CompiledUDF, g *graph.Graph, dev *device.Device,
	feats map[string]*tensor.Tensor, params map[string]*tensor.Tensor,
	wantGrads bool) (float32, map[string]*tensor.Tensor) {
	t.Helper()
	e := nn.NewEngine(dev)
	rt := NewRuntime(e, g)
	vf := map[string]*nn.Variable{}
	gradVars := map[string]*nn.Variable{}
	for k, tt := range feats {
		v := e.Param(tt, k) // Param so features get gradients
		vf[k] = v
		gradVars[k] = v
	}
	pv := map[string]*nn.Variable{}
	for k, tt := range params {
		v := e.Param(tt, k)
		pv[k] = v
		gradVars[k] = v
	}
	out, err := c.Apply(rt, vf, nil, pv)
	if err != nil {
		t.Fatal(err)
	}
	loss := e.SumAll(e.Sigmoid(out))
	if wantGrads {
		e.Backward(loss)
	}
	grads := map[string]*tensor.Tensor{}
	for k, v := range gradVars {
		if v.Grad != nil {
			grads[k] = v.Grad
		}
	}
	return loss.Value.At1(0), grads
}

func numGrad(t *testing.T, c *CompiledUDF, g *graph.Graph,
	feats, params map[string]*tensor.Tensor, target *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	const eps = 1e-2
	out := tensor.New(target.Shape()...)
	for i := 0; i < target.Size(); i++ {
		orig := target.At1(i)
		target.Set1(i, orig+eps)
		up, _ := scalarLoss(t, c, g, device.New(device.V100), feats, params, false)
		target.Set1(i, orig-eps)
		down, _ := scalarLoss(t, c, g, device.New(device.V100), feats, params, false)
		target.Set1(i, orig)
		out.Set1(i, (up-down)/(2*eps))
	}
	return out
}

func checkGrads(t *testing.T, name string, analytic, numeric *tensor.Tensor) {
	t.Helper()
	if analytic == nil {
		t.Fatalf("%s: no gradient", name)
	}
	for i := 0; i < analytic.Size(); i++ {
		a, n := float64(analytic.At1(i)), float64(numeric.At1(i))
		diff := math.Abs(a - n)
		scale := math.Max(math.Abs(a), math.Abs(n)) + 1e-3
		if diff/scale > 0.15 {
			t.Fatalf("%s: grad[%d] analytic %v vs numeric %v", name, i, a, n)
		}
	}
}

func TestGCNEndToEndGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.GNM(rng, 12, 40).SortByDegree()
	c := compileGCN(t, 3, 2)
	feats := map[string]*tensor.Tensor{
		"h":    tensor.Randn(rng, 0.5, 12, 3),
		"norm": tensor.Uniform(rng, 0.2, 1, 12, 1),
	}
	params := map[string]*tensor.Tensor{"W": tensor.Randn(rng, 0.5, 3, 2)}
	_, grads := scalarLoss(t, c, g, device.New(device.V100), feats, params, true)

	for _, key := range []string{"W", "h", "norm"} {
		var target *tensor.Tensor
		if key == "W" {
			target = params[key]
		} else {
			target = feats[key]
		}
		numeric := numGrad(t, c, g, feats, params, target)
		checkGrads(t, "gcn."+key, grads[key], numeric)
	}
}

func TestGATEndToEndGradcheck(t *testing.T) {
	// Keep the attention logits away from the LeakyReLU kink so central
	// differences are valid; run once in the positive branch and once in
	// the negative branch to cover both slopes.
	for name, lo, hi := "positive", 0.2, 1.0; ; name, lo, hi = "negative", -1.0, -0.2 {
		rng := rand.New(rand.NewSource(22))
		g := graph.GNM(rng, 10, 30).SortByDegree()
		c := compileGAT(t, 3)
		feats := map[string]*tensor.Tensor{
			"eu": tensor.Uniform(rng, lo, hi, 10, 1),
			"ev": tensor.Uniform(rng, lo, hi, 10, 1),
			"h":  tensor.Randn(rng, 0.5, 10, 3),
		}
		_, grads := scalarLoss(t, c, g, device.New(device.V100), feats, nil, true)
		for _, key := range []string{"eu", "ev", "h"} {
			numeric := numGrad(t, c, g, feats, nil, feats[key])
			checkGrads(t, "gat."+name+"."+key, grads[key], numeric)
		}
		if name == "negative" {
			break
		}
	}
}

func TestRGCNEndToEndGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.GNM(rng, 10, 36)
	graph.RandomEdgeTypes(rng, g, 3)
	if err := g.SortEdgesByType(); err != nil {
		t.Fatal(err)
	}
	b := gir.NewBuilder()
	b.VFeature("h", 3)
	b.EFeature("norm", 1)
	Ws := b.Param("W", 3, 3, 2)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(gir.AggSum, gir.AggSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(dag)
	if err != nil {
		t.Fatal(err)
	}
	hT := tensor.Randn(rng, 0.5, 10, 3)
	normT := tensor.Uniform(rng, 0.2, 1, 36, 1)
	wT := tensor.Randn(rng, 0.5, 3, 3, 2)

	run := func(wantGrads bool) (float32, map[string]*tensor.Tensor) {
		e := nn.NewEngine(device.New(device.V100))
		rt := NewRuntime(e, g)
		h := e.Param(hT, "h")
		norm := e.Param(normT, "norm")
		w := e.Param(wT, "W")
		out, err := c.Apply(rt,
			map[string]*nn.Variable{"h": h},
			map[string]*nn.Variable{"norm": norm},
			map[string]*nn.Variable{"W": w})
		if err != nil {
			t.Fatal(err)
		}
		loss := e.SumAll(e.Sigmoid(out))
		if wantGrads {
			e.Backward(loss)
		}
		return loss.Value.At1(0), map[string]*tensor.Tensor{
			"h": h.Grad, "W": w.Grad, "norm": norm.Grad,
		}
	}
	_, grads := run(true)

	const eps = 1e-2
	for name, target := range map[string]*tensor.Tensor{"h": hT, "W": wT, "norm": normT} {
		numeric := tensor.New(target.Shape()...)
		for i := 0; i < target.Size(); i++ {
			orig := target.At1(i)
			target.Set1(i, orig+eps)
			up, _ := run(false)
			target.Set1(i, orig-eps)
			down, _ := run(false)
			target.Set1(i, orig)
			numeric.Set1(i, (up-down)/(2*eps))
		}
		checkGrads(t, "rgcn."+name, grads[name], numeric)
	}
}

func TestRequiresGradPruningSkipsBackwardUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	g := graph.GNM(rng, 20, 60).SortByDegree()
	c := compileGCN(t, 4, 2)

	run := func(featGrad bool) device.Stats {
		dev := device.New(device.V100)
		e := nn.NewEngine(dev)
		rt := NewRuntime(e, g)
		var h, norm *nn.Variable
		if featGrad {
			h = e.Param(tensor.Randn(rng, 1, 20, 4), "h")
			norm = e.Param(tensor.Ones(20, 1), "norm")
		} else {
			h = e.Input(tensor.Randn(rng, 1, 20, 4), "h")
			norm = e.Input(tensor.Ones(20, 1), "norm")
		}
		w := e.Param(tensor.Randn(rng, 1, 4, 2), "W")
		out, err := c.Apply(rt,
			map[string]*nn.Variable{"h": h, "norm": norm}, nil,
			map[string]*nn.Variable{"W": w})
		if err != nil {
			t.Fatal(err)
		}
		e.Backward(e.SumAll(e.Sigmoid(out)))
		if w.Grad == nil {
			t.Fatal("weight gradient missing")
		}
		if !featGrad && (h.Grad != nil || norm.Grad != nil) {
			t.Fatal("non-differentiable inputs received gradients")
		}
		return dev.Stats()
	}
	full := run(true)
	pruned := run(false)
	if pruned.Kernels >= full.Kernels {
		t.Fatalf("requires-grad pruning did not skip kernels: %d vs %d",
			pruned.Kernels, full.Kernels)
	}
}

func TestApplyMissingInputErrors(t *testing.T) {
	c := compileGCN(t, 3, 2)
	g := graph.Figure7()
	e := nn.NewEngine(nil)
	rt := NewRuntime(e, g)
	_, err := c.Apply(rt, map[string]*nn.Variable{}, nil, map[string]*nn.Variable{})
	if err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestCompiledReusableAcrossIterations(t *testing.T) {
	// Trace once, run many times (the paper caches the compiled program).
	rng := rand.New(rand.NewSource(25))
	g := graph.GNM(rng, 15, 50).SortByDegree()
	c := compileGCN(t, 3, 2)
	dev := device.New(device.V100)
	e := nn.NewEngine(dev)
	rt := NewRuntime(e, g)
	h := e.Input(tensor.Randn(rng, 1, 15, 3), "h")
	norm := e.Input(tensor.Ones(15, 1), "norm")
	w := e.Param(tensor.Randn(rng, 1, 3, 2), "W")
	opt := nn.NewSGD([]*nn.Variable{w}, 0.05)
	var first, last float32
	for it := 0; it < 5; it++ {
		out, err := c.Apply(rt,
			map[string]*nn.Variable{"h": h, "norm": norm}, nil,
			map[string]*nn.Variable{"W": w})
		if err != nil {
			t.Fatal(err)
		}
		loss := e.SumAll(e.Sigmoid(out))
		if it == 0 {
			first = loss.Value.At1(0)
		}
		last = loss.Value.At1(0)
		e.Backward(loss)
		opt.Step()
		e.EndIteration()
	}
	if last >= first {
		t.Fatalf("training did not reduce the objective: %v -> %v", first, last)
	}
	if dev.CurrentBytes() == 0 {
		t.Fatal("params should remain resident")
	}
}

func TestMemoryFreedBetweenIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	g := graph.GNM(rng, 30, 120).SortByDegree()
	c := compileGAT(t, 8)
	dev := device.New(device.V100)
	e := nn.NewEngine(dev)
	rt := NewRuntime(e, g)
	eu := e.Param(tensor.Randn(rng, 1, 30, 1), "eu")
	ev := e.Param(tensor.Randn(rng, 1, 30, 1), "ev")
	h := e.Param(tensor.Randn(rng, 1, 30, 8), "h")
	baseline := dev.CurrentBytes()
	for it := 0; it < 3; it++ {
		out, err := c.Apply(rt,
			map[string]*nn.Variable{"eu": eu, "ev": ev, "h": h}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.Backward(e.SumAll(e.Sigmoid(out)))
		eu.ZeroGrad()
		ev.ZeroGrad()
		h.ZeroGrad()
		e.EndIteration()
		// Gradients stay allocated (they're parameter state) but all
		// iteration-scoped tensors must be gone.
		if got := dev.CurrentBytes(); got > baseline+3*(30*1+30*1+30*8)*4 {
			t.Fatalf("iteration %d leaked device memory: %d > %d", it, got, baseline)
		}
	}
}

func TestInputKindString(t *testing.T) {
	if InVFeat.String() != "vfeat" || InEFeat.String() != "efeat" ||
		InParam.String() != "param" || InputKind(7).String() == "" {
		t.Fatal("InputKind strings")
	}
}

func TestCompiledUDFReusableAcrossGraphs(t *testing.T) {
	// One compiled program, many graphs (the mini-batch pattern): the
	// kernels must be graph-agnostic.
	c := compileGCN(t, 3, 2)
	if len(c.SavedNodes()) == 0 {
		t.Fatal("GCN backward saves no forward values?")
	}
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{5, 17, 40} {
		g := graph.GNM(rng, n, n*2).SortByDegree()
		e := nn.NewEngine(device.New(device.V100))
		rt := NewRuntime(e, g)
		h := e.Input(tensor.Randn(rng, 1, n, 3), "h")
		norm := e.Input(tensor.Ones(n, 1), "norm")
		w := e.Param(tensor.Randn(rng, 1, 3, 2), "W")
		out, err := c.Apply(rt,
			map[string]*nn.Variable{"h": h, "norm": norm}, nil,
			map[string]*nn.Variable{"W": w})
		if err != nil {
			t.Fatal(err)
		}
		if out.Value.Rows() != n {
			t.Fatalf("n=%d: output rows %d", n, out.Value.Rows())
		}
		e.Backward(e.SumAll(e.Sigmoid(out)))
		if w.Grad == nil {
			t.Fatalf("n=%d: no gradient", n)
		}
	}
}

package exec

import (
	"seastar/internal/fusion"
	"seastar/internal/kernels"
)

// TuningUnit describes one kernel the measured re-planner may retune:
// its obs label (the join key between profiles, plans and kernels) and
// the static plan facts the candidate generator needs.
type TuningUnit struct {
	// Label is the unit's obs attribution name ("fwd/unit 3 [seastar]").
	Label string
	// Pass is "fwd" or "bwd".
	Pass string
	// Tileable, Width and TileW echo the kernel's compile-time tiling
	// plan (kernels.Kernel.TilePlan).
	Tileable bool
	Width    int
	TileW    int
	// Specialized reports whether the unit runs the closure-compiled
	// loop, which ignores tile retunes entirely.
	Specialized bool
}

// TuningSurface enumerates the seastar kernels of the compiled program
// that learned tunings can address, forward pass first. The re-planner
// generates candidates from this surface instead of guessing labels.
func (c *CompiledUDF) TuningSurface() []TuningUnit {
	var out []TuningUnit
	add := func(pass string, units []*fusion.Unit, kern map[*fusion.Unit]*kernels.Kernel) {
		for _, u := range units {
			k := kern[u]
			if k == nil {
				continue
			}
			tileable, width, tileW := k.TilePlan()
			spec, _ := k.Specialized()
			out = append(out, TuningUnit{
				Label:       k.ObsLabel(),
				Pass:        pass,
				Tileable:    tileable,
				Width:       width,
				TileW:       tileW,
				Specialized: spec,
			})
		}
	}
	add("fwd", c.FwdPlan.Units, c.fwdKern)
	if c.BwdPlan != nil {
		add("bwd", c.BwdPlan.Units, c.bwdKern)
	}
	return out
}

// ApplyTuning installs per-unit learned overrides, keyed by obs label
// (the labels TuningSurface and adapt profiles use). Unmatched labels
// are ignored — a persisted plan may describe a program shape that has
// since changed, and stale entries must not break execution. Returns
// how many kernels were retuned.
func (c *CompiledUDF) ApplyTuning(tunings map[string]kernels.Tuning) int {
	n := 0
	apply := func(kern map[*fusion.Unit]*kernels.Kernel) {
		for _, k := range kern {
			if tn, ok := tunings[k.ObsLabel()]; ok {
				k.SetTuning(tn)
				n++
			}
		}
	}
	apply(c.fwdKern)
	apply(c.bwdKern)
	return n
}

// ResetTuning clears every learned override, restoring the static plan.
func (c *CompiledUDF) ResetTuning() {
	for _, k := range c.fwdKern {
		k.SetTuning(kernels.Tuning{})
	}
	for _, k := range c.bwdKern {
		k.SetTuning(kernels.Tuning{})
	}
}

package exec

import (
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// runGCNOn executes the compiled GCN layer on an arbitrary graph.
func runGCNOn(t *testing.T, g *graph.Graph) *tensor.Tensor {
	t.Helper()
	c := compileGCN(t, 3, 2)
	rng := rand.New(rand.NewSource(71))
	e := nn.NewEngine(device.New(device.V100))
	rt := NewRuntime(e, g)
	h := e.Param(tensor.Randn(rng, 1, g.N, 3), "h")
	norm := e.Input(tensor.Ones(g.N, 1), "norm")
	w := e.Param(tensor.Randn(rng, 1, 3, 2), "W")
	out, err := c.Apply(rt,
		map[string]*nn.Variable{"h": h, "norm": norm}, nil,
		map[string]*nn.Variable{"W": w})
	if err != nil {
		t.Fatal(err)
	}
	e.Backward(e.SumAll(e.Sigmoid(out)))
	if w.Grad == nil {
		t.Fatal("no weight gradient")
	}
	return out.Value
}

func TestEdgelessGraph(t *testing.T) {
	g, err := graph.FromEdges(5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := runGCNOn(t, g.SortByDegree())
	// No in-edges anywhere: every aggregation is zero.
	for i := 0; i < out.Size(); i++ {
		if out.At1(i) != 0 {
			t.Fatalf("edgeless output %v at %d", out.At1(i), i)
		}
	}
}

func TestSingleVertexSelfLoop(t *testing.T) {
	g, err := graph.FromEdges(1, []int32{0}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	out := runGCNOn(t, g)
	if out.Rows() != 1 || out.Cols() != 2 {
		t.Fatalf("shape %v", out.Shape())
	}
}

func TestParallelEdgesCountTwice(t *testing.T) {
	// Two identical edges u→v must contribute twice to the sum.
	g1, _ := graph.FromEdges(2, []int32{0}, []int32{1})
	g2, _ := graph.FromEdges(2, []int32{0, 0}, []int32{1, 1})

	b := gir.NewBuilder()
	b.VFeature("h", 1)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value { return v.Nbr("h").AggSum() })
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(dag)
	if err != nil {
		t.Fatal(err)
	}
	run := func(g *graph.Graph) float32 {
		e := nn.NewEngine(device.New(device.V100))
		rt := NewRuntime(e, g)
		h := e.Input(tensor.FromSlice([]float32{3, 0}, 2, 1), "h")
		out, err := c.Apply(rt, map[string]*nn.Variable{"h": h}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out.Value.At(1, 0)
	}
	if run(g1) != 3 || run(g2) != 6 {
		t.Fatalf("parallel edges: %v, %v", run(g1), run(g2))
	}
}

func TestHugeDegreeSkew(t *testing.T) {
	// A star graph with a 4000-degree hub: the sorted kernel must put
	// the hub first and still produce exact sums.
	g := graph.Star(4001).SortByDegree()
	b := gir.NewBuilder()
	b.VFeature("h", 1)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value { return v.Nbr("h").AggSum() })
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(dag)
	if err != nil {
		t.Fatal(err)
	}
	e := nn.NewEngine(device.New(device.V100))
	rt := NewRuntime(e, g)
	h := e.Input(tensor.Ones(4001, 1), "h")
	out, err := c.Apply(rt, map[string]*nn.Variable{"h": h}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value.At(0, 0) != 4000 {
		t.Fatalf("hub sum %v", out.Value.At(0, 0))
	}
}

func TestWideFeatures(t *testing.T) {
	// Feature width beyond the block size exercises the ceil(width/gs)
	// path of the FAT groups.
	g := graph.Figure7()
	b := gir.NewBuilder()
	b.VFeature("h", 600)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value { return v.Nbr("h").AggSum() })
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(dag)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	hT := tensor.Randn(rng, 1, 4, 600)
	e := nn.NewEngine(device.New(device.V100))
	rt := NewRuntime(e, g)
	h := e.Input(hT, "h")
	out, err := c.Apply(rt, map[string]*nn.Variable{"h": h}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Check one coordinate by hand: vertex A sums B, C, D.
	want := hT.At(1, 599) + hT.At(2, 599) + hT.At(3, 599)
	if diff := out.Value.At(0, 599) - want; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("wide feature sum off by %v", diff)
	}
}

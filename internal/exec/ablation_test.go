package exec

import (
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// gatDAG traces the GAT layer body used for the fusion ablation.
func gatDAG(t *testing.T, dim int) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("eu", 1)
	b.VFeature("ev", 1)
	b.VFeature("h", dim)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
		a := e.Div(e.AggSum())
		return a.Mul(v.Nbr("h")).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

// runGAT executes the compiled GAT layer once (forward + backward) and
// returns output, gradients, simulated time and peak memory.
func runGAT(t *testing.T, c *CompiledUDF, g *graph.Graph,
	eu, ev, h *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor, float64, int64) {
	t.Helper()
	dev := device.New(device.GTX1080Ti)
	e := nn.NewEngine(dev)
	rt := NewRuntime(e, g)
	euV := e.Param(eu, "eu")
	evV := e.Param(ev, "ev")
	hV := e.Param(h, "h")
	out, err := c.Apply(rt,
		map[string]*nn.Variable{"eu": euV, "ev": evV, "h": hV}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	loss := e.SumAll(e.Sigmoid(out))
	e.Backward(loss)
	return out.Value, hV.Grad, dev.ElapsedNs(), dev.PeakBytes()
}

func TestNoFusionMatchesFusedAndCostsMore(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := graph.PowerLaw(rng, 3000, 8).SortByDegree()
	eu := tensor.Randn(rng, 0.5, 3000, 1)
	ev := tensor.Randn(rng, 0.5, 3000, 1)
	h := tensor.Randn(rng, 0.5, 3000, 16)

	dagFused := gatDAG(t, 16)
	fused, err := Compile(dagFused)
	if err != nil {
		t.Fatal(err)
	}
	dagUnfused := gatDAG(t, 16)
	unfused, err := CompileWith(dagUnfused, Options{NoFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(unfused.FwdPlan.Units) <= len(fused.FwdPlan.Units) {
		t.Fatalf("unfused plan has %d units vs fused %d",
			len(unfused.FwdPlan.Units), len(fused.FwdPlan.Units))
	}

	outF, gradF, timeF, memF := runGAT(t, fused, g, eu, ev, h)
	outU, gradU, timeU, memU := runGAT(t, unfused, g, eu, ev, h)

	if !tensor.AllClose(outF, outU, 1e-3) {
		t.Fatalf("fusion changed forward values by %g", tensor.MaxAbsDiff(outF, outU))
	}
	if !tensor.AllClose(gradF, gradU, 1e-3) {
		t.Fatalf("fusion changed gradients by %g", tensor.MaxAbsDiff(gradF, gradU))
	}
	// The paper's claim (§2.3, §7): fusion saves both time (fewer
	// kernels, no intermediate traffic) and memory (no materialized
	// edge intermediates).
	if timeF >= timeU {
		t.Errorf("fused time %.0fns should be < unfused %.0fns", timeF, timeU)
	}
	if memF >= memU {
		t.Errorf("fused peak %dB should be < unfused %dB", memF, memU)
	}
}

func TestNoFusionRGCN(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := graph.GNM(rng, 40, 200)
	graph.RandomEdgeTypes(rng, g, 3)
	if err := g.SortEdgesByType(); err != nil {
		t.Fatal(err)
	}
	build := func() *gir.DAG {
		b := gir.NewBuilder()
		b.VFeature("h", 4)
		b.EFeature("norm", 1)
		Ws := b.Param("W", 3, 4, 2)
		dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
			return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(gir.AggSum, gir.AggSum)
		})
		if err != nil {
			t.Fatal(err)
		}
		return dag
	}
	fused, err := Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := CompileWith(build(), Options{NoFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	h := tensor.Randn(rng, 0.5, 40, 4)
	norm := tensor.Uniform(rng, 0.3, 1, 200, 1)
	W := tensor.Randn(rng, 0.5, 3, 4, 2)

	run := func(c *CompiledUDF) (*tensor.Tensor, *tensor.Tensor) {
		e := nn.NewEngine(device.New(device.V100))
		rt := NewRuntime(e, g)
		hV := e.Param(h, "h")
		nV := e.Input(norm, "norm")
		wV := e.Param(W, "W")
		out, err := c.Apply(rt,
			map[string]*nn.Variable{"h": hV},
			map[string]*nn.Variable{"norm": nV},
			map[string]*nn.Variable{"W": wV})
		if err != nil {
			t.Fatal(err)
		}
		e.Backward(e.SumAll(e.Sigmoid(out)))
		return out.Value, wV.Grad
	}
	outF, dwF := run(fused)
	outU, dwU := run(unfused)
	if !tensor.AllClose(outF, outU, 1e-4) || !tensor.AllClose(dwF, dwU, 1e-4) {
		t.Fatal("NoFusion changed R-GCN results")
	}
}

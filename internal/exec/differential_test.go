package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/refinterp"
	"seastar/internal/tensor"
)

// randomProgram deterministically generates a random (but valid)
// vertex-centric program from a seed. Calling it twice with the same seed
// yields structurally identical programs, so the same program can be
// traced once for the reference interpreter and once for the compiled
// pipeline.
func randomProgram(seed int64, hetero bool, dim int) (*gir.Builder, gir.UDF) {
	b := gir.NewBuilder()
	b.VFeature("h", dim)
	b.VFeature("s", 1)
	if hetero {
		b.EFeature("w", 1)
	}
	udf := func(v *gir.Vertex) *gir.Value {
		rng := rand.New(rand.NewSource(seed))
		pool := []*gir.Value{v.Nbr("h"), v.Self("h"), v.Nbr("s"), v.Self("s")}
		if hetero {
			pool = append(pool, v.Edge("w"))
		}
		pick := func() *gir.Value { return pool[rng.Intn(len(pool))] }
		pickWidth := func(w int) *gir.Value {
			for tries := 0; tries < 20; tries++ {
				c := pick()
				if c.Node().Dim() == w || c.Node().Dim() == 1 || w == 1 {
					return c
				}
			}
			return pick()
		}
		nOps := 3 + rng.Intn(6)
		for i := 0; i < nOps; i++ {
			var nv *gir.Value
			switch rng.Intn(10) {
			case 0:
				nv = pick().Sigmoid()
			case 1:
				nv = pick().Tanh()
			case 2:
				nv = pick().LeakyReLU(0.2)
			case 3:
				nv = pick().MulScalar(0.5).AddScalar(0.25)
			case 4, 5:
				a := pick()
				nv = a.Add(pickWidth(a.Node().Dim()))
			case 6:
				a := pick()
				nv = a.Mul(pickWidth(a.Node().Dim()))
			case 7:
				a := pick()
				// Keep denominators away from zero.
				nv = a.Div(pickWidth(a.Node().Dim()).Sigmoid().AddScalar(1.1))
			case 8:
				a := pick()
				if a.Node().Dim() > 1 {
					nv = a.RowSum()
				} else {
					nv = a.Neg()
				}
			default:
				a := pick()
				if a.Type() != gir.TypeD { // aggregate pre-D values only
					if hetero && rng.Intn(2) == 0 {
						nv = a.AggHier(gir.AggSum, gir.AggSum)
					} else {
						nv = a.AggSum()
					}
				} else {
					nv = a.Sigmoid()
				}
			}
			pool = append(pool, nv)
		}
		// Final output must be D-typed: reuse a D value or aggregate.
		for i := len(pool) - 1; i >= 0; i-- {
			if pool[i].Type() == gir.TypeD {
				return pool[i]
			}
		}
		last := pool[len(pool)-1]
		if last.Type() == gir.TypeD {
			return last
		}
		return last.AggSum()
	}
	return b, udf
}

// differentialBindings builds matching inputs for both engines.
type diffInputs struct {
	h, s *tensor.Tensor
	w    *tensor.Tensor // nil unless hetero
}

func makeDiffInputs(rng *rand.Rand, g *graph.Graph, dim int, hetero bool) diffInputs {
	in := diffInputs{
		h: tensor.Randn(rng, 0.5, g.N, dim),
		s: tensor.Randn(rng, 0.5, g.N, 1),
	}
	if hetero {
		in.w = tensor.Randn(rng, 0.5, g.M, 1)
	}
	return in
}

// runCompiled executes the compiled pipeline and returns the output and,
// optionally, per-input gradients (h, s, w order).
func runCompiled(t *testing.T, seed int64, g *graph.Graph, in diffInputs, dim int,
	hetero, backward bool) (*tensor.Tensor, map[string]*tensor.Tensor) {
	t.Helper()
	b, udf := randomProgram(seed, hetero, dim)
	dag, err := b.Build(udf)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	c, err := Compile(dag)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	e := nn.NewEngine(device.New(device.V100))
	rt := NewRuntime(e, g)
	vf := map[string]*nn.Variable{
		"h": e.Param(in.h, "h"),
		"s": e.Param(in.s, "s"),
	}
	var ef map[string]*nn.Variable
	if hetero {
		ef = map[string]*nn.Variable{"w": e.Param(in.w, "w")}
	}
	out, err := c.Apply(rt, vf, ef, nil)
	if err != nil {
		t.Fatalf("seed %d: apply: %v", seed, err)
	}
	grads := map[string]*tensor.Tensor{}
	if backward {
		loss := e.SumAll(e.Tanh(out))
		e.Backward(loss)
		grads["h"] = vf["h"].Grad
		grads["s"] = vf["s"].Grad
		if hetero {
			grads["w"] = ef["w"].Grad
		}
	}
	return out.Value, grads
}

// runReference traces the same program again and evaluates it with the
// definitional interpreter (no optimizer, no fusion, no kernels).
func runReference(t *testing.T, seed int64, g *graph.Graph, in diffInputs, dim int, hetero bool) *tensor.Tensor {
	t.Helper()
	b, udf := randomProgram(seed, hetero, dim)
	dag, err := b.Build(udf)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	bind := &refinterp.Bindings{
		VFeat: map[string]*tensor.Tensor{"h": in.h, "s": in.s},
	}
	if hetero {
		bind.EFeat = map[string]*tensor.Tensor{"w": in.w}
	}
	vals, err := refinterp.Eval(dag, g, bind)
	if err != nil {
		t.Fatalf("seed %d: reference: %v", seed, err)
	}
	return vals[dag.Outputs[0]]
}

func TestDifferentialRandomProgramsForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for seed := int64(0); seed < 60; seed++ {
		hetero := seed%3 == 0
		dim := []int{1, 2, 4}[rng.Intn(3)]
		n := 8 + rng.Intn(20)
		m := 20 + rng.Intn(60)
		if max := n * (n - 1); m > max {
			m = max
		}
		g := graph.GNM(rng, n, m)
		if hetero {
			graph.RandomEdgeTypes(rng, g, 1+rng.Intn(4))
			if err := g.SortEdgesByType(); err != nil {
				t.Fatal(err)
			}
		}
		g = g.SortByDegree()
		in := makeDiffInputs(rng, g, dim, hetero)
		got, _ := runCompiled(t, seed, g, in, dim, hetero, false)
		want := runReference(t, seed, g, in, dim, hetero)
		if !tensor.AllClose(got, want, 1e-3) {
			t.Fatalf("seed %d (hetero=%v dim=%d): compiled output diverges from reference by %g",
				seed, hetero, dim, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestDifferentialRandomProgramsGradients(t *testing.T) {
	// Numerical gradients via the reference interpreter against the
	// compiled backward pass, on a handful of random programs.
	rng := rand.New(rand.NewSource(4321))
	checked := 0
	for seed := int64(100); checked < 8; seed++ {
		hetero := seed%2 == 0
		dim := 2
		g := graph.GNM(rng, 8, 24)
		if hetero {
			graph.RandomEdgeTypes(rng, g, 3)
			if err := g.SortEdgesByType(); err != nil {
				t.Fatal(err)
			}
		}
		g = g.SortByDegree()
		in := makeDiffInputs(rng, g, dim, hetero)
		_, grads := runCompiled(t, seed, g, in, dim, hetero, true)

		refLoss := func() float64 {
			out := runReference(t, seed, g, in, dim, hetero)
			var s float64
			for i := 0; i < out.Size(); i++ {
				s += math.Tanh(float64(out.At1(i)))
			}
			return s
		}
		const eps = 1e-2
		targets := map[string]*tensor.Tensor{"h": in.h, "s": in.s}
		if hetero {
			targets["w"] = in.w
		}
		probes, misses := 0, 0
		var lastMiss string
		for name, target := range targets {
			analytic := grads[name]
			// Spot-check a few coordinates to keep runtime low. A nil
			// analytic gradient means the input is unused (dead in the
			// random program); the numeric gradient must then be ~0.
			for probe := 0; probe < 5; probe++ {
				i := rng.Intn(target.Size())
				orig := target.At1(i)
				target.Set1(i, orig+eps)
				up := refLoss()
				target.Set1(i, orig-eps)
				down := refLoss()
				target.Set1(i, orig)
				num := (up - down) / (2 * eps)
				a := 0.0
				if analytic != nil {
					a = float64(analytic.At1(i))
				}
				probes++
				diff := math.Abs(a - num)
				scale := math.Max(math.Abs(a), math.Abs(num)) + 1e-2
				if diff/scale > 0.15 {
					misses++
					lastMiss = fmt.Sprintf("seed %d %s[%d]: analytic %v vs numeric %v", seed, name, i, a, num)
				}
			}
		}
		// Central differences are invalid where a probe crosses a
		// LeakyReLU/ReLU kink; isolated misses are expected, systematic
		// ones are bugs.
		if misses*5 > probes {
			t.Fatalf("%d/%d gradient probes failed; last: %s", misses, probes, lastMiss)
		}
		checked++
	}
}

package exec

import (
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

func TestEagerFreeingLowersBackwardPeak(t *testing.T) {
	// Run the un-fused GAT backward (many materialized intermediates in
	// a chain): eager freeing must keep the within-iteration peak below
	// the cumulative allocation total — without it the two coincide
	// until EndIteration.
	rng := rand.New(rand.NewSource(91))
	g := graph.PowerLaw(rng, 2000, 8).SortByDegree()
	eu := tensor.Randn(rng, 0.5, 2000, 1)
	ev := tensor.Randn(rng, 0.5, 2000, 1)
	h := tensor.Randn(rng, 0.5, 2000, 16)

	c, err := CompileWith(gatDAG(t, 16), Options{NoFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(device.V100)
	e := nn.NewEngine(dev)
	rt := NewRuntime(e, g)
	euV := e.Param(eu, "eu")
	evV := e.Param(ev, "ev")
	hV := e.Param(h, "h")
	out, err := c.Apply(rt,
		map[string]*nn.Variable{"eu": euV, "ev": evV, "h": hV}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Backward(e.SumAll(e.Sigmoid(out)))

	peak := dev.PeakBytes()
	total := dev.TotalAllocBytes()
	if peak >= total {
		t.Fatalf("eager freeing ineffective: peak %d >= total allocated %d", peak, total)
	}
	// The gradients must still be intact (freed buffers are accounting
	// objects; values were already copied out).
	if hV.Grad == nil || euV.Grad == nil {
		t.Fatal("gradients missing after eager freeing")
	}
	e.EndIteration()
	if dev.CurrentBytes() > int64(3*2000*(1+1+16))*4+4096 {
		t.Fatalf("leak after EndIteration: %d bytes", dev.CurrentBytes())
	}
}

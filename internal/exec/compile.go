// Package exec compiles traced vertex-centric programs into executable
// plans and runs them against a graph, a simulated device, and the nn
// autograd backend — the paper's code generation and runtime execution
// layer (§5.3). A compiled UDF becomes a custom autograd function whose
// forward and backward passes each dispatch a sequence of execution
// units: fused seastar kernels, dense backend ops, and parameter-gradient
// reductions.
package exec

import (
	"fmt"

	"seastar/internal/autodiff"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/kernels"
	"seastar/internal/obs"
)

// InputKind distinguishes the tensor namespaces a compiled UDF reads.
type InputKind int

const (
	// InVFeat inputs are [N, d] vertex-feature tensors.
	InVFeat InputKind = iota
	// InEFeat inputs are [M, d] edge-feature tensors.
	InEFeat
	// InParam inputs are parameter tensors.
	InParam
)

// String names the input kind (vfeat, efeat, param).
func (k InputKind) String() string {
	switch k {
	case InVFeat:
		return "vfeat"
	case InEFeat:
		return "efeat"
	case InParam:
		return "param"
	default:
		return fmt.Sprintf("InputKind(%d)", int(k))
	}
}

// InputSpec names one input of a compiled UDF, in autograd-input order.
type InputSpec struct {
	Kind InputKind
	Key  string
}

// CompiledUDF is a fully lowered vertex-centric program: optimized
// forward and backward GIRs, their unit partitions, materialization
// plans, and compiled kernels. Compile once, apply every iteration — the
// paper's trace-once-then-cache behaviour (§5.1).
type CompiledUDF struct {
	Fwd   *gir.DAG
	Grads *autodiff.Gradients

	FwdPlan *fusion.Plan
	BwdPlan *fusion.Plan

	fwdMat map[*fusion.Unit][]*gir.Node
	bwdMat map[*fusion.Unit][]*gir.Node

	fwdKern map[*fusion.Unit]*kernels.Kernel
	bwdKern map[*fusion.Unit]*kernels.Kernel

	// fwdLabels/bwdLabels are precomputed obs attribution names, parallel
	// to FwdPlan.Units / BwdPlan.Units, so the per-unit tracing on the
	// execution hot path is a slice index — no fmt, no map, no alloc.
	fwdLabels []string
	bwdLabels []string

	// saved lists forward operator nodes whose values the backward pass
	// reads (materialization planning keeps exactly these, §5.3).
	saved []*gir.Node

	// Inputs is the autograd input order of Apply.
	Inputs []InputSpec
	// leafInput[i] is the input index that Grads.LeafOrder[i]'s gradient
	// accumulates into.
	leafInput []int
}

// Options tunes compilation, exposing the ablation switches.
type Options struct {
	// NoFusion puts every operator in its own execution unit (the
	// paper's un-fused baseline): edge intermediates materialize.
	NoFusion bool
	// InferenceOnly skips backward-pass generation entirely: no
	// autodiff, no backward plan, no saved-value retention. The result
	// supports Infer but not Apply (which needs gradients). This also
	// admits forward-only programs that are not differentiable (max or
	// mean aggregations).
	InferenceOnly bool
}

// Compile lowers a traced forward DAG end to end: optimize → autodiff →
// optimize backward → partition both → compile kernels.
func Compile(dag *gir.DAG) (*CompiledUDF, error) {
	return CompileWith(dag, Options{})
}

// CompileInference lowers only the forward pass (see
// Options.InferenceOnly) — the serving layer's compile entry point.
func CompileInference(dag *gir.DAG) (*CompiledUDF, error) {
	return CompileWith(dag, Options{InferenceOnly: true})
}

// CompileWith is Compile with explicit options.
func CompileWith(dag *gir.DAG, opts Options) (*CompiledUDF, error) {
	total := obs.Begin("compile", "total")
	defer total.End()
	partition := fusion.Partition
	if opts.NoFusion {
		partition = fusion.PartitionUnfused
	}
	sp := obs.Begin("compile", "optimize")
	fwd := fusion.Optimize(dag)
	sp.End()

	c := &CompiledUDF{Fwd: fwd}
	var err error
	savedSet := make(map[*gir.Node]bool)
	if !opts.InferenceOnly {
		sp := obs.Begin("compile", "autodiff")
		grads, err := autodiff.Backward(fwd)
		if err != nil {
			return nil, err
		}
		grads.DAG = fusion.Optimize(grads.DAG)
		sp.End()
		c.Grads = grads

		// Forward values the backward pass references.
		for _, n := range grads.DAG.Nodes {
			if n.Op == gir.OpLeaf && n.LeafKind == gir.LeafSaved && n.Ref.Op != gir.OpLeaf {
				if !savedSet[n.Ref] {
					savedSet[n.Ref] = true
					c.saved = append(c.saved, n.Ref)
				}
			}
		}
	}

	sp = obs.Begin("compile", "partition")
	if c.FwdPlan, err = partition(fwd); err != nil {
		return nil, fmt.Errorf("exec: forward partition: %w", err)
	}
	if c.Grads != nil {
		if c.BwdPlan, err = partition(c.Grads.DAG); err != nil {
			return nil, fmt.Errorf("exec: backward partition: %w", err)
		}
	}
	sp.End()
	sp = obs.Begin("compile", "materialize")
	c.fwdMat = c.FwdPlan.Materialized(savedSet)
	if c.BwdPlan != nil {
		c.bwdMat = c.BwdPlan.Materialized(nil)
	}
	sp.End()

	availOf := func(mat map[*fusion.Unit][]*gir.Node) map[*gir.Node]bool {
		avail := make(map[*gir.Node]bool)
		for _, ns := range mat {
			for _, n := range ns {
				avail[n] = true
			}
		}
		return avail
	}
	fwdAvail := availOf(c.fwdMat)
	bwdAvail := availOf(c.bwdMat)

	sp = obs.Begin("compile", "kernelgen")
	c.fwdKern = make(map[*fusion.Unit]*kernels.Kernel)
	for _, u := range c.FwdPlan.Units {
		c.fwdLabels = append(c.fwdLabels, unitLabel("fwd", u))
		if u.Kind == fusion.KindSeastar {
			k, err := kernels.Compile(u, c.fwdMat[u], fwdAvail)
			if err != nil {
				return nil, err
			}
			k.SetObsLabel(unitLabel("fwd", u))
			c.fwdKern[u] = k
		}
	}
	c.bwdKern = make(map[*fusion.Unit]*kernels.Kernel)
	if c.BwdPlan != nil {
		for _, u := range c.BwdPlan.Units {
			c.bwdLabels = append(c.bwdLabels, unitLabel("bwd", u))
			if u.Kind == fusion.KindSeastar {
				k, err := kernels.Compile(u, c.bwdMat[u], bwdAvail)
				if err != nil {
					return nil, err
				}
				k.SetObsLabel(unitLabel("bwd", u))
				c.bwdKern[u] = k
			}
		}
	}
	sp.End()

	// Input order: vertex features, edge features, parameters (first-use
	// order within each group).
	vkeys, ekeys := fwd.FeatureKeys()
	for _, k := range vkeys {
		c.Inputs = append(c.Inputs, InputSpec{InVFeat, k})
	}
	for _, k := range ekeys {
		c.Inputs = append(c.Inputs, InputSpec{InEFeat, k})
	}
	for _, k := range fwd.ParamKeys() {
		c.Inputs = append(c.Inputs, InputSpec{InParam, k})
	}
	index := make(map[InputSpec]int, len(c.Inputs))
	for i, s := range c.Inputs {
		index[s] = i
	}
	if c.Grads != nil {
		for _, leaf := range c.Grads.LeafOrder {
			spec := InputSpec{Kind: InVFeat, Key: leaf.Key}
			switch leaf.LeafKind {
			case gir.LeafEdgeFeat:
				spec.Kind = InEFeat
			case gir.LeafParam:
				spec.Kind = InParam
			}
			i, ok := index[spec]
			if !ok {
				return nil, fmt.Errorf("exec: gradient for unknown input %v", spec)
			}
			c.leafInput = append(c.leafInput, i)
		}
	}
	return c, nil
}

// SavedNodes returns the forward nodes kept for the backward pass.
func (c *CompiledUDF) SavedNodes() []*gir.Node { return c.saved }

// unitLabel is the obs attribution name for one execution unit of a
// pass, e.g. "fwd/unit 3 [seastar]".
func unitLabel(pass string, u *fusion.Unit) string {
	return fmt.Sprintf("%s/unit %d [%s]", pass, u.ID, u.Kind)
}

// UnitLabels returns the obs attribution names of the forward and
// backward execution units, parallel to FwdPlan.Units and BwdPlan.Units.
// EXPLAIN ANALYZE joins these against the obs registry to attribute
// measured time back to plan units.
func (c *CompiledUDF) UnitLabels() (fwd, bwd []string) {
	return append([]string(nil), c.fwdLabels...), append([]string(nil), c.bwdLabels...)
}

// FwdKernel returns the compiled kernel of a forward seastar unit, or
// nil for dense/paramgrad units. Introspection only — execution goes
// through Apply/Infer.
func (c *CompiledUDF) FwdKernel(u *fusion.Unit) *kernels.Kernel { return c.fwdKern[u] }

// BwdKernel is FwdKernel for the backward plan.
func (c *CompiledUDF) BwdKernel(u *fusion.Unit) *kernels.Kernel { return c.bwdKern[u] }

// MaterializedFwd returns the forward-plan nodes of u whose values the
// materialization planner decided to write to tensors (§5.3).
func (c *CompiledUDF) MaterializedFwd(u *fusion.Unit) []*gir.Node { return c.fwdMat[u] }

// MaterializedBwd is MaterializedFwd for the backward plan.
func (c *CompiledUDF) MaterializedBwd(u *fusion.Unit) []*gir.Node { return c.bwdMat[u] }

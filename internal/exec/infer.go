package exec

import (
	"fmt"

	"seastar/internal/device"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/obs"
	"seastar/internal/tensor"
)

// InferEnv is the per-call execution context for forward-only inference.
// Unlike Runtime it carries no autograd engine, so any number of InferEnv
// values can execute the same CompiledUDF concurrently: compiled kernels
// serialize on their own internal lock, the pool is mutex-guarded, and
// everything else here is call-local. The serving layer creates one
// device per batch and shares the pool across batches.
type InferEnv struct {
	G   *graph.Graph
	Dev *device.Device
	Cfg kernels.Config
	// Pool, when non-nil, supplies intermediate storage; every
	// intermediate is returned to it before Infer returns.
	Pool *tensor.Pool
}

// Infer runs only the forward plan of a compiled UDF over plain tensors —
// no tape, no gradients, no saved-value retention. It returns a freshly
// owned [N, d] output tensor (never aliasing an input or pooled buffer).
func (c *CompiledUDF) Infer(env *InferEnv, vfeat, efeat, params map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	if env == nil || env.G == nil {
		return nil, fmt.Errorf("exec: Infer needs a graph")
	}
	dev := env.Dev
	if dev == nil {
		dev = device.New(device.V100)
	}
	cfg := env.Cfg
	if cfg == (kernels.Config{}) {
		cfg = kernels.DefaultConfig()
	}

	b := &kernels.Bindings{
		VFeat:  map[string]*tensor.Tensor{},
		EFeat:  map[string]*tensor.Tensor{},
		Params: map[string]*tensor.Tensor{},
		Inter:  map[*gir.Node]*tensor.Tensor{},
	}
	for _, spec := range c.Inputs {
		var m map[string]*tensor.Tensor
		switch spec.Kind {
		case InVFeat:
			m = vfeat
		case InEFeat:
			m = efeat
		default:
			m = params
		}
		t, ok := m[spec.Key]
		if !ok {
			return nil, fmt.Errorf("exec: missing %s input %q", spec.Kind, spec.Key)
		}
		switch spec.Kind {
		case InVFeat:
			b.VFeat[spec.Key] = t
		case InEFeat:
			b.EFeat[spec.Key] = t
		default:
			b.Params[spec.Key] = t
		}
	}

	var allocated []*tensor.Tensor
	alloc := func(n *gir.Node) *tensor.Tensor {
		var t *tensor.Tensor
		shape := n.Shape
		switch n.Type {
		case gir.TypeE:
			shape = append([]int{env.G.M}, shape...)
		case gir.TypeP:
		default:
			shape = append([]int{env.G.N}, shape...)
		}
		if env.Pool != nil {
			t = env.Pool.Get(shape...)
		} else {
			t = tensor.New(shape...)
		}
		allocated = append(allocated, t)
		return t
	}

	for ui, u := range c.FwdPlan.Units {
		sp := obs.Begin("exec", c.fwdLabels[ui])
		switch u.Kind {
		case fusion.KindSeastar:
			mat := c.fwdMat[u]
			outs := make(map[*gir.Node]*tensor.Tensor, len(mat))
			for _, m := range mat {
				outs[m] = alloc(m)
			}
			if err := c.fwdKern[u].Run(dev, env.G, cfg, b, outs); err != nil {
				return nil, fmt.Errorf("exec: infer unit %d: %w", u.ID, err)
			}
			for n, t := range outs {
				b.Inter[n] = t
			}
		case fusion.KindDense:
			for _, n := range u.Nodes {
				ins := make([]*tensor.Tensor, len(n.Inputs))
				for i, in := range n.Inputs {
					t, err := b.Resolve(in)
					if err != nil {
						return nil, err
					}
					ins[i] = t
				}
				out, err := inferDense(dev, n, ins)
				if err != nil {
					return nil, fmt.Errorf("exec: infer unit %d: %w", u.ID, err)
				}
				allocated = append(allocated, out)
				b.Inter[n] = out
			}
		default:
			// Parameter-gradient units never appear in a forward plan.
			return nil, fmt.Errorf("exec: infer cannot run %s unit %d", u.Kind, u.ID)
		}
		sp.End()
	}

	out, err := b.Resolve(c.Fwd.Outputs[0])
	if err != nil {
		return nil, err
	}
	// Detach the result from intermediate storage before recycling it.
	out = out.Clone()
	if env.Pool != nil {
		for _, t := range allocated {
			env.Pool.Put(t)
		}
	}
	return out, nil
}

// inferDense evaluates one dense-unit operator, charging dev with the
// same cost model the training runtime uses.
func inferDense(dev *device.Device, n *gir.Node, ins []*tensor.Tensor) (*tensor.Tensor, error) {
	switch n.Op {
	case gir.OpMatMulP:
		out := tensor.MatMul(ins[0], ins[1])
		ChargeDense(dev, "dense.matmul",
			float64(ins[0].Rows())*float64(ins[1].Rows())*float64(ins[1].Cols()),
			int64(ins[0].Size()+ins[1].Size())*4, int64(out.Size())*4)
		return out, nil
	case gir.OpMatMulPT:
		out := tensor.MatMulT(ins[0], ins[1])
		ChargeDense(dev, "dense.matmulT",
			float64(ins[0].Rows())*float64(ins[1].Rows())*float64(ins[1].Cols()),
			int64(ins[0].Size()+ins[1].Size())*4, int64(out.Size())*4)
		return out, nil
	default:
		out, err := denseElementwise(n, ins)
		if err != nil {
			return nil, err
		}
		ChargeDense(dev, "dense."+n.Op.String(), float64(out.Size()),
			int64(out.Size())*8, int64(out.Size())*4)
		return out, nil
	}
}

// ChargeDense charges a dense compute kernel of `ops` multiply-adds
// moving loadB+storeB bytes directly to a device — the engine-free twin
// of nn.Engine.ChargeDense, for execution paths that carry no autograd
// state (inference serving).
func ChargeDense(dev *device.Device, name string, ops float64, loadB, storeB int64) {
	if dev == nil {
		return
	}
	p := dev.Profile
	const threads = 256
	const efficiency = 0.5
	blocks := p.SMCount * (p.MaxThreadsPerSM / threads)
	if blocks < 1 {
		blocks = 1
	}
	path := ops / (float64(p.SMCount*p.CoresPerSM) * efficiency)
	dev.LaunchKernel(device.Launch{
		Name:               name,
		Blocks:             blocks,
		ThreadsPerBlock:    threads,
		UniformBlockCycles: path,
		LoadBytes:          loadB,
		StoreBytes:         storeB,
	})
}

package pipeline

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// histBounds are the stage-latency bucket upper bounds in seconds —
// log-spaced from 10µs to 10s, following internal/serve's exposition
// conventions but one decade lower (a mini-batch stage is much shorter
// than an end-to-end request).
var histBounds = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
	0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// hist is a fixed-bucket, lock-free latency histogram in the Prometheus
// cumulative style (same shape as internal/serve's).
type hist struct {
	buckets []atomic.Int64 // len(histBounds)+1, last is +Inf
	count   atomic.Int64
	sumNs   atomic.Int64
}

func newHist() *hist {
	return &hist{buckets: make([]atomic.Int64, len(histBounds)+1)}
}

// Observe records one duration.
func (h *hist) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(histBounds) && s > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// SumNs returns the total observed time in nanoseconds.
func (h *hist) SumNs() int64 { return h.sumNs.Load() }

// Count returns the number of observations.
func (h *hist) Count() int64 { return h.count.Load() }

// AvgNs returns the mean observation in nanoseconds (0 when empty).
func (h *hist) AvgNs() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNs.Load()) / float64(n)
}

// write emits the histogram in Prometheus text exposition format.
func (h *hist) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, b := range histBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.buckets[len(histBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// Hist is the exported view of a stage histogram (counters only; the
// buckets are reachable through Write).
type Hist = hist

// Metrics aggregates the pipeline's per-stage counters and timing
// histograms. All fields are atomics: stage goroutines update them
// concurrently and a scraper can read them mid-epoch.
type Metrics struct {
	Sampled    atomic.Int64 // batches drawn by stage 1
	Gathered   atomic.Int64 // batches gathered by stage 2
	Trained    atomic.Int64 // batches completed by stage 3
	Epochs     atomic.Int64 // epochs completed
	StepErrors atomic.Int64 // compute-step failures
	Restores   atomic.Int64 // checkpoint restores
	Saves      atomic.Int64 // checkpoint saves

	SampleTime   *Hist // per-batch neighbour sampling
	GatherTime   *Hist // per-batch degree sort + feature/label gather
	ComputeTime  *Hist // per-batch forward/backward/step
	ComputeStall *Hist // compute-side wait for the next ready batch
}

// NewMetrics returns a zeroed metrics block.
func NewMetrics() *Metrics {
	return &Metrics{
		SampleTime:   newHist(),
		GatherTime:   newHist(),
		ComputeTime:  newHist(),
		ComputeStall: newHist(),
	}
}

// Write emits every metric in Prometheus text exposition format, using
// the seastar_pipeline_* namespace alongside serve's seastar_serve_*.
func (m *Metrics) Write(w io.Writer) {
	g := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	g("seastar_pipeline_batches_sampled_total", m.Sampled.Load())
	g("seastar_pipeline_batches_gathered_total", m.Gathered.Load())
	g("seastar_pipeline_batches_trained_total", m.Trained.Load())
	g("seastar_pipeline_epochs_total", m.Epochs.Load())
	g("seastar_pipeline_step_errors_total", m.StepErrors.Load())
	g("seastar_pipeline_checkpoint_restores_total", m.Restores.Load())
	g("seastar_pipeline_checkpoint_saves_total", m.Saves.Load())
	m.SampleTime.write(w, "seastar_pipeline_sample_seconds")
	m.GatherTime.write(w, "seastar_pipeline_gather_seconds")
	m.ComputeTime.write(w, "seastar_pipeline_compute_seconds")
	m.ComputeStall.write(w, "seastar_pipeline_compute_stall_seconds")
}

package pipeline

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// Checkpoint is a resumable snapshot of mini-batch training: how many
// epochs completed, the sampler base seed (resume refuses a mismatched
// seed — the epoch plans would diverge), parameter values, and the Adam
// moments. Serialized with encoding/gob, written atomically.
type Checkpoint struct {
	Epoch    int // epochs fully completed; training resumes at this epoch
	BaseSeed int64
	Params   []TensorState
	Opt      nn.AdamState
}

// TensorState is one serialized tensor.
type TensorState struct {
	Shape []int
	Data  []float32
}

// CaptureParams deep-copies parameter values for a checkpoint.
func CaptureParams(params []*nn.Variable) []TensorState {
	out := make([]TensorState, len(params))
	for i, p := range params {
		out[i] = TensorState{
			Shape: append([]int(nil), p.Value.Shape()...),
			Data:  append([]float32(nil), p.Value.Data()...),
		}
	}
	return out
}

// RestoreParams copies a checkpoint's values back into params, which
// must match in count and shape.
func RestoreParams(params []*nn.Variable, st []TensorState) error {
	if len(params) != len(st) {
		return fmt.Errorf("pipeline: checkpoint has %d params, model has %d", len(st), len(params))
	}
	for i, p := range params {
		if len(st[i].Data) != p.Value.Size() {
			return fmt.Errorf("pipeline: checkpoint param %d has %d elements, model has %d",
				i, len(st[i].Data), p.Value.Size())
		}
		copy(p.Value.Data(), st[i].Data)
	}
	return nil
}

// Tensor reconstructs the stored tensor.
func (ts TensorState) Tensor() *tensor.Tensor {
	return tensor.FromSlice(append([]float32(nil), ts.Data...), ts.Shape...)
}

// Save writes the checkpoint atomically: gob to a temp file in the same
// directory, fsync, rename. A crash mid-save leaves the previous
// checkpoint intact.
func (c *Checkpoint) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("pipeline: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(c); err != nil {
		tmp.Close()
		return fmt.Errorf("pipeline: checkpoint encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("pipeline: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pipeline: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("pipeline: checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save. A missing file is
// reported via os.IsNotExist on the wrapped error's cause; callers that
// treat "no checkpoint yet" as a cold start should os.Stat first.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var c Checkpoint
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint decode %s: %w", path, err)
	}
	return &c, nil
}

package pipeline

import (
	"context"
	"errors"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/sampling"
	"seastar/internal/tensor"
)

// testEngine builds a small Zipf-graph engine.
func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := graph.ZipfDegree(rng, 600, 6, 1.0)
	feat := tensor.Randn(rng, 2, g.N, 5)
	labels := make([]int, g.N)
	for i := range labels {
		labels[i] = rng.Intn(3)
	}
	s, err := sampling.NewSampler(g, []int{4, 3}, 17)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(s, feat, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// batchFingerprint hashes everything the compute stage can observe.
func batchFingerprint(b *Batch) uint64 {
	h := fnv.New64a()
	write := func(vs ...int) {
		for _, v := range vs {
			var buf [8]byte
			for i := range buf {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	write(b.Epoch, b.Index, b.Sub.N, b.Sub.M, b.B.SeedCount)
	for _, v := range b.B.Vertices {
		write(int(v))
	}
	for e := 0; e < b.Sub.M; e++ {
		write(int(b.Sub.Srcs[e]), int(b.Sub.Dsts[e]))
	}
	for _, l := range b.Labels {
		write(l)
	}
	for _, f := range b.Feat.Data() {
		write(int(int64(f * 1e6)))
	}
	return h.Sum64()
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ZipfDegree(rng, 50, 4, 1.0)
	feat := tensor.Randn(rng, 1, g.N, 3)
	labels := make([]int, g.N)
	s, _ := sampling.NewSampler(g, []int{2}, 1)

	if _, err := New(nil, feat, labels, Config{BatchSize: 8}); err == nil {
		t.Fatal("nil sampler accepted")
	}
	if _, err := New(s, feat, labels, Config{BatchSize: 0}); err == nil {
		t.Fatal("zero batch size accepted")
	}
	if _, err := New(s, feat, labels, Config{BatchSize: 8, Prefetch: -1}); err == nil {
		t.Fatal("negative prefetch accepted")
	}
	if _, err := New(s, tensor.New(3, 3), labels, Config{BatchSize: 8}); err == nil {
		t.Fatal("mis-shaped features accepted")
	}
	if _, err := New(s, feat, labels[:10], Config{BatchSize: 8}); err == nil {
		t.Fatal("short labels accepted")
	}
}

// TestPipelinedMatchesSerial is the engine-level half of the
// reproducibility story: for the same seed, the pipelined engine must
// deliver bitwise-identical batches in identical order, for any
// prefetch depth and worker count.
func TestPipelinedMatchesSerial(t *testing.T) {
	collect := func(cfg Config, epochs int) []uint64 {
		e := testEngine(t, cfg)
		var fps []uint64
		for ep := 0; ep < epochs; ep++ {
			err := e.RunEpoch(context.Background(), ep, func(b *Batch) error {
				fps = append(fps, batchFingerprint(b))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return fps
	}

	serial := collect(Config{BatchSize: 64, Prefetch: 0, DegreeSort: true}, 3)
	for _, cfg := range []Config{
		{BatchSize: 64, Prefetch: 1, SampleWorkers: 1, DegreeSort: true},
		{BatchSize: 64, Prefetch: 2, SampleWorkers: 3, DegreeSort: true},
		{BatchSize: 64, Prefetch: 8, SampleWorkers: 4, DegreeSort: true},
	} {
		got := collect(cfg, 3)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("pipelined batches diverge from serial at prefetch=%d workers=%d",
				cfg.Prefetch, cfg.SampleWorkers)
		}
	}
}

// waitGoroutines polls until the goroutine count returns to base
// (teardown accounting is asynchronous, as in sched's pool tests).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: have %d, want ≤ %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNoGoroutineLeak(t *testing.T) {
	e := testEngine(t, Config{BatchSize: 64, Prefetch: 3, SampleWorkers: 3, DegreeSort: true})
	// Warm up once so any lazily-spawned process-lifetime goroutines
	// (e.g. the shared sched pool) are excluded from the baseline.
	if err := e.RunEpoch(context.Background(), 0, func(*Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for ep := 1; ep < 4; ep++ {
		if err := e.RunEpoch(context.Background(), ep, func(*Batch) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutines(t, base)
}

func TestMidEpochCancelDrainsAllStages(t *testing.T) {
	e := testEngine(t, Config{BatchSize: 32, Prefetch: 4, SampleWorkers: 3, DegreeSort: true})
	if err := e.RunEpoch(context.Background(), 0, func(*Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	err := e.RunEpoch(ctx, 1, func(b *Batch) error {
		steps++
		if steps == 2 {
			cancel() // cancel mid-epoch while every stage holds work
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if steps < 2 {
		t.Fatalf("cancelled before reaching batch 2 (%d steps)", steps)
	}
	// Every stage goroutine must have drained and exited.
	waitGoroutines(t, base)
	cancel()
}

func TestStepErrorPropagatesAndDrains(t *testing.T) {
	e := testEngine(t, Config{BatchSize: 32, Prefetch: 3, SampleWorkers: 2, DegreeSort: true})
	if err := e.RunEpoch(context.Background(), 0, func(*Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	boom := errors.New("boom")
	steps := 0
	err := e.RunEpoch(context.Background(), 1, func(b *Batch) error {
		steps++
		if steps == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want step error, got %v", err)
	}
	if steps != 3 {
		t.Fatalf("step ran %d times after error at 3", steps)
	}
	waitGoroutines(t, base)
}

func TestBackpressureBound(t *testing.T) {
	cfg := Config{BatchSize: 16, Prefetch: 2, SampleWorkers: 3, DegreeSort: false}
	e := testEngine(t, cfg)
	// In-flight batches (sampled but not yet trained) are hard-bounded
	// by the credit semaphore: 2P + SampleWorkers.
	bound := int64(2*cfg.Prefetch + cfg.SampleWorkers)
	var worst int64
	err := e.RunEpoch(context.Background(), 0, func(b *Batch) error {
		time.Sleep(200 * time.Microsecond) // let sampling run ahead
		inflight := e.Metrics.Sampled.Load() - e.Metrics.Trained.Load()
		if inflight > atomic.LoadInt64(&worst) {
			atomic.StoreInt64(&worst, inflight)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst > bound {
		t.Fatalf("backpressure violated: %d batches in flight, bound %d", worst, bound)
	}
}

func TestMetricsAccounting(t *testing.T) {
	e := testEngine(t, Config{BatchSize: 64, Prefetch: 2, SampleWorkers: 2, DegreeSort: true})
	plan, _ := e.Sampler.PlanEpoch(0, 64)
	if err := e.RunEpoch(context.Background(), 0, func(*Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	n := int64(len(plan))
	if e.Metrics.Sampled.Load() != n || e.Metrics.Gathered.Load() != n || e.Metrics.Trained.Load() != n {
		t.Fatalf("counters %d/%d/%d, want %d batches",
			e.Metrics.Sampled.Load(), e.Metrics.Gathered.Load(), e.Metrics.Trained.Load(), n)
	}
	if e.Metrics.Epochs.Load() != 1 {
		t.Fatalf("epochs %d", e.Metrics.Epochs.Load())
	}
	if e.Metrics.SampleTime.Count() != n || e.Metrics.ComputeTime.Count() != n {
		t.Fatal("stage histograms missed observations")
	}
	var sb strings.Builder
	e.Metrics.Write(&sb)
	out := sb.String()
	for _, want := range []string{
		"seastar_pipeline_batches_trained_total",
		"seastar_pipeline_sample_seconds_bucket",
		"seastar_pipeline_compute_stall_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}
}

func TestStageTrace(t *testing.T) {
	e := testEngine(t, Config{BatchSize: 64, Prefetch: 0, DegreeSort: true})
	e.EnableTrace()
	if err := e.RunEpoch(context.Background(), 0, func(*Batch) error {
		time.Sleep(time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tr := e.LastTrace()
	if tr == nil || len(tr.Sample) == 0 {
		t.Fatal("no trace recorded")
	}
	for i := range tr.Sample {
		if tr.Sample[i] <= 0 || tr.Gather[i] <= 0 || tr.Compute[i] < time.Millisecond {
			t.Fatalf("batch %d has empty stage durations %v/%v/%v",
				i, tr.Sample[i], tr.Gather[i], tr.Compute[i])
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := nn.NewEngine(nil)
	w1 := e.Param(tensor.Randn(rng, 1, 4, 3), "w1")
	w2 := e.Param(tensor.Randn(rng, 2, 3, 2), "w2")
	params := []*nn.Variable{w1, w2}
	opt := nn.NewAdam(params, 0.01)

	// Take a few optimizer steps so the moments are non-trivial.
	for i := 0; i < 3; i++ {
		for _, p := range params {
			p.Grad = tensor.Randn(rng, float64(i+1), p.Value.Rows(), p.Value.Cols())
		}
		opt.Step()
	}

	ck := &Checkpoint{Epoch: 7, BaseSeed: 99, Params: CaptureParams(params), Opt: opt.State()}
	path := filepath.Join(t.TempDir(), "ck.gob")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 || got.BaseSeed != 99 {
		t.Fatalf("header %d/%d", got.Epoch, got.BaseSeed)
	}

	// Mutate, then restore: values and moments must round-trip exactly.
	wantW1 := append([]float32(nil), w1.Value.Data()...)
	w1.Value.Data()[0] += 42
	opt2 := nn.NewAdam(params, 0.01)
	if err := RestoreParams(params, got.Params); err != nil {
		t.Fatal(err)
	}
	if err := opt2.SetState(got.Opt); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantW1, w1.Value.Data()) {
		t.Fatal("param restore mismatch")
	}
	st := opt2.State()
	if !reflect.DeepEqual(st, got.Opt) {
		t.Fatal("optimizer state restore mismatch")
	}

	// Shape mismatches are rejected.
	if err := RestoreParams(params[:1], got.Params); err == nil {
		t.Fatal("param-count mismatch accepted")
	}
	bad := got.Params
	bad[0].Data = bad[0].Data[:2]
	if err := RestoreParams(params, bad); err == nil {
		t.Fatal("element-count mismatch accepted")
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.gob")); !os.IsNotExist(err) {
		t.Fatalf("missing checkpoint: %v", err)
	}
}

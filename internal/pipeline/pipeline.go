// Package pipeline is the asynchronous mini-batch training engine: it
// turns a sampling.Sampler and a per-batch training step into a bounded
// three-stage pipeline —
//
//  1. sample   — SampleWorkers goroutines draw the neighbourhoods of
//     upcoming batches in parallel;
//  2. gather   — one goroutine degree-sorts each batch subgraph
//     (§6.3.3's "prepared in the background") and copies its
//     features/labels into pooled tensors;
//  3. compute  — the caller's goroutine runs forward/backward/optimizer,
//     whose kernels dispatch onto the sched.Pool.
//
// Stages are connected by bounded channels, so sampling for batch k+P
// overlaps compute for batch k and backpressure (never more than ~2P+W
// batches in flight) bounds memory. Every batch's sampler RNG is seeded
// by sampling.DeriveSeed(baseSeed, epoch, batchIndex) and batches are
// re-ordered before compute, so a pipelined epoch is bitwise-identical
// to a serial one — the property tests in internal/train assert exactly
// that.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"seastar/internal/graph"
	"seastar/internal/obs"
	"seastar/internal/sampling"
	"seastar/internal/tensor"
)

// Config tunes the pipeline. The zero value of Prefetch selects the
// serial reference path (sample→gather→compute inline, same seeds, same
// numerics) — benchmarks and property tests compare the two.
type Config struct {
	// BatchSize is the number of seed vertices per mini-batch.
	BatchSize int
	// Prefetch is the pipeline depth P: each inter-stage channel buffers
	// up to P batches. 0 runs serially on the caller's goroutine.
	Prefetch int
	// SampleWorkers is the stage-1 parallelism (min 1).
	SampleWorkers int
	// DegreeSort degree-sorts each batch subgraph in the gather stage.
	DegreeSort bool
	// Hooks let a storage backend observe and front-run the stages;
	// zero value means no hooks (the in-memory path).
	Hooks Hooks
}

// Hooks are the out-of-core seam (DESIGN.md §16): an mmap-backed store
// registers prefetch callbacks that walk upcoming batches' pages ahead
// of the stage that will fault on them, plus a page-fault counter the
// engine samples around each stage to attribute I/O stall time. All
// hooks must be non-blocking and thread-safe (the sample stage is
// parallel); nil members are skipped. Hooks never change what is
// computed — a store-backed run is bitwise-identical to in-memory.
type Hooks struct {
	// PrefetchSeeds is called with the seed list of an upcoming batch
	// ahead of that batch's sample stage (one batch of lead serially;
	// the task feeder's credit window of lead when pipelined).
	PrefetchSeeds func(seeds []int32)
	// PrefetchBatch is called with a freshly sampled batch's base-graph
	// vertex ids, ahead of that batch's gather stage.
	PrefetchBatch func(verts []int32)
	// Faults returns a cumulative major page-fault count; sampled
	// around each stage (only while obs tracing is enabled) and the
	// delta recorded as the stage's "majflt" counter.
	Faults func() int64
}

// faults reads the fault counter when stall attribution is on.
func (e *Engine) faults() (int64, bool) {
	if e.Cfg.Hooks.Faults == nil || !obs.Enabled() {
		return 0, false
	}
	return e.Cfg.Hooks.Faults(), true
}

// DefaultConfig is a balanced starting point: depth-4 pipeline with two
// sampling workers and per-batch degree sorting.
func DefaultConfig() Config {
	return Config{BatchSize: 256, Prefetch: 4, SampleWorkers: 2, DegreeSort: true}
}

// Batch is one gathered mini-batch, delivered to the compute step in
// index order. Feat is pooled storage owned by the engine; the step must
// not retain it (or any view of it) after returning.
type Batch struct {
	Epoch, Index int
	// B is the sampled subgraph with compact-id bookkeeping.
	B *sampling.Batch
	// Sub is B.Sub, degree-sorted when Config.DegreeSort is set.
	Sub *graph.Graph
	// Feat is the [len(B.Vertices), d] gathered feature slice (pooled).
	Feat *tensor.Tensor
	// Labels and Mask are the per-vertex labels and the seed mask.
	Labels []int
	Mask   []bool
}

// Step consumes one batch: forward, loss, backward, optimizer step.
// It runs on the goroutine that called RunEpoch, strictly in batch
// order.
type Step func(*Batch) error

// Engine drives epochs of pipelined mini-batch training over one
// sampler and one base feature/label set.
type Engine struct {
	Sampler *sampling.Sampler
	Feat    *tensor.Tensor
	Labels  []int
	Cfg     Config
	// Metrics aggregates per-stage counters and timings; always non-nil
	// after New.
	Metrics *Metrics

	pool  *tensor.Pool
	trace *StageTrace
}

// New validates the configuration and builds an engine.
func New(s *sampling.Sampler, feat *tensor.Tensor, labels []int, cfg Config) (*Engine, error) {
	if s == nil {
		return nil, fmt.Errorf("pipeline: nil sampler")
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("pipeline: batch size must be ≥ 1, got %d", cfg.BatchSize)
	}
	if cfg.Prefetch < 0 {
		return nil, fmt.Errorf("pipeline: prefetch must be ≥ 0, got %d", cfg.Prefetch)
	}
	if cfg.SampleWorkers < 1 {
		cfg.SampleWorkers = 1
	}
	if feat == nil || feat.Rows() != s.G.N {
		return nil, fmt.Errorf("pipeline: features must be [N, d] with N=%d", s.G.N)
	}
	if len(labels) != s.G.N {
		return nil, fmt.Errorf("pipeline: %d labels for %d vertices", len(labels), s.G.N)
	}
	return &Engine{
		Sampler: s, Feat: feat, Labels: labels, Cfg: cfg,
		Metrics: NewMetrics(), pool: tensor.NewPool(),
	}, nil
}

// Retune re-plans the pipeline shape for subsequent epochs: prefetch
// depth (0 collapses to the serial reference path) and sampling worker
// count. It is the adaptive trainer's knob and must only be called
// between RunEpoch calls — stage goroutines are spawned per epoch, so a
// retune never races a running pipeline. Retuning moves work between
// prefetch slots and workers but never reorders or reseeds batches, so
// the loss curve stays bitwise-identical (the property tests in
// internal/train assert this across retunes mid-run).
func (e *Engine) Retune(prefetch, sampleWorkers int) error {
	if prefetch < 0 {
		return fmt.Errorf("pipeline: retune prefetch must be ≥ 0, got %d", prefetch)
	}
	if sampleWorkers < 1 {
		sampleWorkers = 1
	}
	e.Cfg.Prefetch = prefetch
	e.Cfg.SampleWorkers = sampleWorkers
	return nil
}

// EnableTrace records per-batch stage durations for the next epochs;
// LastTrace returns the most recent epoch's record. Benchmarks feed the
// trace to the overlap model.
func (e *Engine) EnableTrace() { e.trace = &StageTrace{} }

// LastTrace returns the stage durations of the last traced epoch (nil
// when tracing is off).
func (e *Engine) LastTrace() *StageTrace {
	if e.trace == nil {
		return nil
	}
	return e.trace.snapshot()
}

// StageTrace holds per-batch stage durations for one epoch.
type StageTrace struct {
	mu      sync.Mutex
	Sample  []time.Duration
	Gather  []time.Duration
	Compute []time.Duration
}

func (t *StageTrace) reset(n int) {
	t.mu.Lock()
	t.Sample = make([]time.Duration, n)
	t.Gather = make([]time.Duration, n)
	t.Compute = make([]time.Duration, n)
	t.mu.Unlock()
}

func (t *StageTrace) set(stage int, idx int, d time.Duration) {
	t.mu.Lock()
	switch stage {
	case 0:
		t.Sample[idx] = d
	case 1:
		t.Gather[idx] = d
	case 2:
		t.Compute[idx] = d
	}
	t.mu.Unlock()
}

func (t *StageTrace) snapshot() *StageTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return &StageTrace{
		Sample:  append([]time.Duration(nil), t.Sample...),
		Gather:  append([]time.Duration(nil), t.Gather...),
		Compute: append([]time.Duration(nil), t.Compute...),
	}
}

// RunEpoch trains one epoch: it plans the batch order for `epoch` (a
// pure function of the sampler's base seed and the epoch number), then
// streams every batch through the pipeline into step. It returns the
// first stage or step error, or ctx.Err() on cancellation; in both
// cases all stage goroutines have exited and all pooled tensors are
// back in the pool before it returns.
func (e *Engine) RunEpoch(ctx context.Context, epoch int, step Step) error {
	plan, err := e.Sampler.PlanEpoch(epoch, e.Cfg.BatchSize)
	if err != nil {
		return err
	}
	if e.trace != nil {
		e.trace.reset(len(plan))
	}
	if e.Cfg.Prefetch == 0 {
		err = e.runSerial(ctx, epoch, plan, step)
	} else {
		err = e.runPipelined(ctx, epoch, plan, step)
	}
	if err == nil {
		e.Metrics.Epochs.Add(1)
	}
	return err
}

// sampleOne draws batch idx of the epoch with its derived seed.
func (e *Engine) sampleOne(epoch, idx int, seeds []int32) (*sampling.Batch, error) {
	f0, attr := e.faults()
	start := time.Now()
	b, err := e.Sampler.SampleSeeded(seeds, sampling.DeriveSeed(e.Sampler.BaseSeed(), epoch, idx))
	if err != nil {
		return nil, fmt.Errorf("pipeline: sample batch %d of epoch %d: %w", idx, epoch, err)
	}
	d := time.Since(start)
	e.Metrics.SampleTime.Observe(d)
	obs.Observe("pipeline", "sample", d)
	if attr {
		obs.Add("pipeline", "sample", "majflt", e.Cfg.Hooks.Faults()-f0)
	}
	if e.Cfg.Hooks.PrefetchBatch != nil {
		e.Cfg.Hooks.PrefetchBatch(b.Vertices)
	}
	e.Metrics.Sampled.Add(1)
	if e.trace != nil {
		e.trace.set(0, idx, d)
	}
	return b, nil
}

// gather builds the compute-ready batch: degree sort + pooled feature
// and label gathers.
func (e *Engine) gather(epoch, idx int, sb *sampling.Batch) *Batch {
	f0, attr := e.faults()
	start := time.Now()
	sub := sb.Sub
	if e.Cfg.DegreeSort {
		sub = sub.SortByDegree()
	}
	feat := e.pool.Get(len(sb.Vertices), e.Feat.Cols())
	sb.GatherFeaturesInto(feat, e.Feat)
	b := &Batch{
		Epoch: epoch, Index: idx, B: sb, Sub: sub,
		Feat:   feat,
		Labels: sb.GatherLabels(e.Labels),
		Mask:   sb.SeedMask(),
	}
	d := time.Since(start)
	e.Metrics.GatherTime.Observe(d)
	obs.Observe("pipeline", "gather", d)
	if attr {
		obs.Add("pipeline", "gather", "majflt", e.Cfg.Hooks.Faults()-f0)
	}
	e.Metrics.Gathered.Add(1)
	if e.trace != nil {
		e.trace.set(1, idx, d)
	}
	return b
}

// release returns a batch's pooled storage.
func (e *Engine) release(b *Batch) {
	if b == nil {
		return
	}
	e.pool.Put(b.Feat)
	b.Feat = nil
}

// compute runs the caller's step with timing.
func (e *Engine) compute(b *Batch, step Step) error {
	start := time.Now()
	err := step(b)
	d := time.Since(start)
	e.Metrics.ComputeTime.Observe(d)
	obs.Observe("pipeline", "compute", d)
	if err != nil {
		e.Metrics.StepErrors.Add(1)
		return err
	}
	e.Metrics.Trained.Add(1)
	if e.trace != nil {
		e.trace.set(2, b.Index, d)
	}
	return nil
}

// runSerial is the reference path: identical seeds and numerics, no
// concurrency. Prefetch-0 engines and the overlap benchmark's baseline
// use it.
func (e *Engine) runSerial(ctx context.Context, epoch int, plan [][]int32, step Step) error {
	for idx, seeds := range plan {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.Cfg.Hooks.PrefetchSeeds != nil && idx+1 < len(plan) {
			e.Cfg.Hooks.PrefetchSeeds(plan[idx+1])
		}
		sb, err := e.sampleOne(epoch, idx, seeds)
		if err != nil {
			return err
		}
		b := e.gather(epoch, idx, sb)
		err = e.compute(b, step)
		e.release(b)
		if err != nil {
			return err
		}
	}
	return nil
}

// sampled carries an out-of-order stage-1 result.
type sampled struct {
	idx int
	b   *sampling.Batch
}

// runPipelined wires the bounded three-stage pipeline. Cancellation and
// error handling share one path: fail() cancels the internal context,
// every blocking send/receive selects on it, and the caller drains the
// ready channel (returning pooled tensors) before waiting for all stage
// goroutines to exit.
func (e *Engine) runPipelined(ctx context.Context, epoch int, plan [][]int32, step Step) error {
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}

	P := e.Cfg.Prefetch
	tasks := make(chan int)
	sampledCh := make(chan sampled, P)
	ordered := make(chan sampled)
	ready := make(chan *Batch, P)
	// credits hard-bounds the batches issued but not yet trained: the
	// channels alone would let sample workers race arbitrarily far ahead
	// whenever one batch samples slowly (the reorder buffer is a map).
	credits := make(chan struct{}, 2*P+e.Cfg.SampleWorkers)

	var wg sync.WaitGroup

	// Task feeder: batch indices in order, one credit each.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(tasks)
		for i := range plan {
			if e.Cfg.Hooks.PrefetchSeeds != nil {
				// Issued as the index enters the task queue, so the
				// credit window (2P+W batches) is the prefetch lead.
				e.Cfg.Hooks.PrefetchSeeds(plan[i])
			}
			select {
			case credits <- struct{}{}:
			case <-ictx.Done():
				return
			}
			select {
			case tasks <- i:
			case <-ictx.Done():
				return
			}
		}
	}()

	// Stage 1: parallel sampling workers.
	var sampWG sync.WaitGroup
	for w := 0; w < e.Cfg.SampleWorkers; w++ {
		sampWG.Add(1)
		go func() {
			defer sampWG.Done()
			for {
				var (
					i  int
					ok bool
				)
				select {
				case i, ok = <-tasks:
					if !ok {
						return
					}
				case <-ictx.Done():
					return
				}
				sb, err := e.sampleOne(epoch, i, plan[i])
				if err != nil {
					fail(err)
					return
				}
				select {
				case sampledCh <- sampled{i, sb}:
				case <-ictx.Done():
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sampWG.Wait()
		close(sampledCh)
	}()

	// Reorder: restore batch-index order so compute (and hence the
	// optimizer trajectory) is schedule-independent. The pending map is
	// bounded by the worker count plus channel buffers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ordered)
		pending := map[int]*sampling.Batch{}
		next := 0
		for sb := range sampledCh {
			pending[sb.idx] = sb.b
			for {
				b, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case ordered <- sampled{next, b}:
				case <-ictx.Done():
					return
				}
				next++
			}
		}
	}()

	// Stage 2: gather into pooled tensors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ready)
		for sb := range ordered {
			b := e.gather(epoch, sb.idx, sb.b)
			select {
			case ready <- b:
			case <-ictx.Done():
				e.release(b)
				return
			}
		}
	}()

	// Stage 3: compute in order on the caller's goroutine. After an
	// error (or external cancel) keep draining so gather's sends always
	// complete and pooled tensors come back.
	done := false
	for {
		waitStart := time.Now()
		b, ok := <-ready
		if !ok {
			break
		}
		if done || ictx.Err() != nil {
			e.release(b)
			<-credits
			continue
		}
		stall := time.Since(waitStart)
		e.Metrics.ComputeStall.Observe(stall)
		obs.Observe("pipeline", "compute-stall", stall)
		if err := e.compute(b, step); err != nil {
			fail(err)
			done = true
		}
		e.release(b)
		<-credits
	}
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

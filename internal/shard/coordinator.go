package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"seastar/internal/graph"
	"seastar/internal/obs"
	"seastar/internal/part"
	"seastar/internal/serve"
	"seastar/internal/tensor"
)

// CoordinatorConfig configures the shard-aware front end.
type CoordinatorConfig struct {
	Spec serve.ModelSpec
	// Workers are the shard worker base URLs, one per shard, index-aligned
	// with the partition's shard numbering.
	Workers []string
	// Mode is the partition mode ("" = greedy); it must match the workers'.
	Mode string
	// Client performs worker RPCs (default: 30s-timeout client).
	Client *http.Client
	// RetryAfter is the Retry-After hint on 503 responses (default 1s).
	RetryAfter time.Duration
}

// shardStats is one worker's coordinator-side counters.
type shardStats struct {
	Steps    atomic.Int64
	Gathers  atomic.Int64
	Errors   atomic.Int64
	BytesTx  atomic.Int64
	BytesRx  atomic.Int64
	StepNs   atomic.Int64
	GatherNs atomic.Int64
}

// Coordinator scatters /v1/infer to the owning shards and drives the
// per-layer mirror exchange that precedes the first answer. It holds the
// owner table (derived from the same deterministic partition the workers
// built) but never the fragments themselves: exchanged row blocks are
// opaque to it — both endpoints of every block agree on row order by
// construction, so the coordinator only routes shard s's export-to-t
// block into shard t's round request.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client
	k      int
	n      int
	rounds int
	owner  []int32
	owned  []int // vertices mastered per shard

	urlMu sync.RWMutex
	urls  []string

	syncMu sync.Mutex
	synced atomic.Bool

	stats []shardStats
	// failures counts 503-answered requests (shard failure or partial
	// sync), the coordinator's own health signal.
	failures atomic.Int64
	infers   atomic.Int64
}

// NewCoordinator derives the owner table by partitioning g exactly as
// the workers do and returns a coordinator over cfg.Workers. The graph
// is not retained.
func NewCoordinator(cfg CoordinatorConfig, g *graph.Graph) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one worker URL")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	rounds, err := serve.ShardRoundsForSpec(cfg.Spec)
	if err != nil {
		return nil, err
	}
	k := len(cfg.Workers)
	p, err := part.Build(g, k, cfg.Mode)
	if err != nil {
		return nil, err
	}
	owned := make([]int, k)
	for s, f := range p.Frags {
		owned[s] = f.Owned
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return &Coordinator{
		cfg:    cfg,
		client: client,
		k:      k,
		n:      g.N,
		rounds: rounds,
		owner:  p.Owner,
		owned:  owned,
		urls:   append([]string(nil), cfg.Workers...),
		stats:  make([]shardStats, k),
	}, nil
}

// SetWorker replaces shard i's URL (re-scheduling a failed worker) and
// clears the synced flag so the next request re-drives the exchange.
func (c *Coordinator) SetWorker(i int, url string) {
	c.urlMu.Lock()
	c.urls[i] = url
	c.urlMu.Unlock()
	c.synced.Store(false)
}

func (c *Coordinator) url(i int) string {
	c.urlMu.RLock()
	defer c.urlMu.RUnlock()
	return c.urls[i]
}

// post sends one worker RPC and decodes the JSON reply.
func (c *Coordinator) post(ctx context.Context, s int, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	st := &c.stats[s]
	st.BytesTx.Add(int64(len(body)))
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(s)+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		st.Errors.Add(1)
		return fmt.Errorf("shard %d: %w", s, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 256<<20))
	if err != nil {
		st.Errors.Add(1)
		return fmt.Errorf("shard %d: %w", s, err)
	}
	st.BytesRx.Add(int64(len(data)))
	if hresp.StatusCode != http.StatusOK {
		st.Errors.Add(1)
		return fmt.Errorf("shard %d: %s: %s", s, hresp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, resp)
}

// ensureSynced drives the full exchange — rounds × (step every worker,
// reroute exports into next round's mirrors) — exactly once per cold or
// failed state. Round 1 resets every worker, so a fleet left half-synced
// by a crash converges again deterministically.
func (c *Coordinator) ensureSynced(ctx context.Context) error {
	if c.synced.Load() {
		return nil
	}
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	if c.synced.Load() {
		return nil
	}
	start := time.Now()
	// mirrors[t] maps source shard → block for the upcoming round.
	mirrors := make([]map[string][]byte, c.k)
	for r := 1; r <= c.rounds; r++ {
		type stepRes struct {
			s    int
			resp stepResponse
			err  error
		}
		results := make(chan stepRes, c.k)
		for s := 0; s < c.k; s++ {
			go func(s int) {
				st := &c.stats[s]
				t0 := time.Now()
				var resp stepResponse
				err := c.post(ctx, s, "/v1/shard/step",
					&stepRequest{Gen: staticGen, Round: r, Mirrors: mirrors[s]}, &resp)
				st.Steps.Add(1)
				st.StepNs.Add(time.Since(t0).Nanoseconds())
				results <- stepRes{s, resp, err}
			}(s)
		}
		next := make([]map[string][]byte, c.k)
		for i := 0; i < c.k; i++ {
			res := <-results
			if res.err != nil {
				// Drain remaining sends happen into the buffered channel;
				// the fleet is left mid-round and the next sync restarts
				// from round 1.
				return fmt.Errorf("sync round %d: %w", r, res.err)
			}
			for key, block := range res.resp.Exports {
				t, err := strconv.Atoi(key)
				if err != nil || t < 0 || t >= c.k {
					return fmt.Errorf("sync round %d: shard %d exported to bad peer %q", r, res.s, key)
				}
				if next[t] == nil {
					next[t] = map[string][]byte{}
				}
				next[t][strconv.Itoa(res.s)] = block
			}
		}
		mirrors = next
	}
	c.synced.Store(true)
	if obs.Enabled() {
		obs.ObserveEvent("shard", "sync", start, time.Since(start), 0)
	}
	return nil
}

// Infer answers one inference request by gathering final logits from the
// owning shards. It is the programmatic form of POST /v1/infer.
func (c *Coordinator) Infer(ctx context.Context, nodes []int32) (*serve.Result, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shard: no nodes requested")
	}
	for _, v := range nodes {
		if v < 0 || int(v) >= c.n {
			return nil, fmt.Errorf("shard: node %d out of range [0,%d)", v, c.n)
		}
	}
	if err := c.ensureSynced(ctx); err != nil {
		return nil, &unavailableError{err}
	}

	// Group nodes by owning shard, remembering positions.
	byShard := make(map[int][]int32)
	pos := make(map[int][]int)
	for i, v := range nodes {
		s := int(c.owner[v])
		byShard[s] = append(byShard[s], v)
		pos[s] = append(pos[s], i)
	}

	type gatherRes struct {
		s    int
		resp gatherResponse
		err  error
	}
	results := make(chan gatherRes, len(byShard))
	for s, vs := range byShard {
		go func(s int, vs []int32) {
			st := &c.stats[s]
			t0 := time.Now()
			var resp gatherResponse
			err := c.post(ctx, s, "/v1/shard/gather", &gatherRequest{Gen: staticGen, Nodes: vs}, &resp)
			st.Gathers.Add(1)
			st.GatherNs.Add(time.Since(t0).Nanoseconds())
			results <- gatherRes{s, resp, err}
		}(s, vs)
	}
	var width int
	rows := make(map[int][]float32)
	for range byShard {
		res := <-results
		if res.err != nil {
			// A gather can fail because a worker died and came back cold
			// on the same URL (its logits are gone even though the fleet
			// looked synced). Drop the synced flag so the next request
			// resyncs from round 1 instead of gathering from a cold
			// worker forever.
			c.synced.Store(false)
			return nil, &unavailableError{res.err}
		}
		if width == 0 {
			width = res.resp.Width
		} else if width != res.resp.Width {
			return nil, fmt.Errorf("shard: width mismatch %d vs %d", width, res.resp.Width)
		}
		rows[res.s] = bytesToFloats(res.resp.Rows)
	}

	logits := tensor.New(len(nodes), width)
	for s, ps := range pos {
		block := rows[s]
		for j, i := range ps {
			copy(logits.Row(i), block[j*width:(j+1)*width])
		}
	}
	return &serve.Result{
		Nodes:   nodes,
		Logits:  logits,
		Classes: tensor.ArgMaxRows(logits),
		Gen:     staticGen,
	}, nil
}

// unavailableError wraps worker failures that should answer 503 with a
// Retry-After hint instead of hanging or 500ing.
type unavailableError struct{ err error }

func (e *unavailableError) Error() string { return e.err.Error() }
func (e *unavailableError) Unwrap() error { return e.err }

// TotalBytes sums coordinator-side wire traffic across all shards
// (request bodies out, response bodies in) — the bench's measured
// cross-shard traffic counter.
func (c *Coordinator) TotalBytes() (tx, rx int64) {
	for s := range c.stats {
		tx += c.stats[s].BytesTx.Load()
		rx += c.stats[s].BytesRx.Load()
	}
	return tx, rx
}

// Rounds returns the exchange-round count of the deployed arch.
func (c *Coordinator) Rounds() int { return c.rounds }

// Owner returns the shard that masters vertex v.
func (c *Coordinator) Owner(v int32) int { return int(c.owner[v]) }

// topology is the /v1/shards payload.
type topology struct {
	Shards   int          `json:"shards"`
	Rounds   int          `json:"rounds"`
	Arch     string       `json:"arch"`
	N        int          `json:"n"`
	Synced   bool         `json:"synced"`
	Infers   int64        `json:"infers"`
	Failures int64        `json:"failures"`
	Workers  []shardStat_ `json:"workers"`
}

type shardStat_ struct {
	Shard      int    `json:"shard"`
	URL        string `json:"url"`
	Owned      int    `json:"owned"`
	Steps      int64  `json:"steps"`
	Gathers    int64  `json:"gathers"`
	Errors     int64  `json:"errors"`
	BytesTx    int64  `json:"bytes_tx"`
	BytesRx    int64  `json:"bytes_rx"`
	StepNs     int64  `json:"step_ns"`
	GatherNs   int64  `json:"gather_ns"`
	GatherAvgU int64  `json:"gather_avg_us"`
}

func (c *Coordinator) topology() topology {
	t := topology{
		Shards: c.k, Rounds: c.rounds, Arch: c.cfg.Spec.Arch, N: c.n,
		Synced: c.synced.Load(), Infers: c.infers.Load(), Failures: c.failures.Load(),
	}
	for s := 0; s < c.k; s++ {
		st := &c.stats[s]
		row := shardStat_{
			Shard: s, URL: c.url(s), Owned: c.owned[s],
			Steps: st.Steps.Load(), Gathers: st.Gathers.Load(), Errors: st.Errors.Load(),
			BytesTx: st.BytesTx.Load(), BytesRx: st.BytesRx.Load(),
			StepNs: st.StepNs.Load(), GatherNs: st.GatherNs.Load(),
		}
		if row.Gathers > 0 {
			row.GatherAvgU = row.GatherNs / row.Gathers / 1e3
		}
		t.Workers = append(t.Workers, row)
	}
	return t
}

// Handler is the coordinator's HTTP surface:
//
//	POST /v1/infer   same contract as the single-process server
//	GET  /v1/shards  topology + per-shard latency/traffic counters
//	GET  /healthz    liveness
//	GET  /metrics    Prometheus text: per-shard counters + obs spans
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(rw http.ResponseWriter, r *http.Request) {
		var req struct {
			Nodes     []int32 `json:"nodes"`
			TimeoutMS int     `json:"timeout_ms,omitempty"`
		}
		if !decodePost(rw, r, &req) {
			return
		}
		ctx := r.Context()
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		c.infers.Add(1)
		start := time.Now()
		res, err := c.Infer(ctx, req.Nodes)
		if err != nil {
			if ue, ok := err.(*unavailableError); ok {
				c.failures.Add(1)
				rw.Header().Set("Retry-After",
					strconv.Itoa(int(c.cfg.RetryAfter/time.Second)))
				http.Error(rw, ue.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if obs.Enabled() {
			obs.ObserveEvent("shard", "infer", start, time.Since(start), 0)
		}
		resp := struct {
			Nodes   []int32     `json:"nodes"`
			Logits  [][]float32 `json:"logits"`
			Classes []int       `json:"classes"`
		}{Nodes: res.Nodes, Classes: res.Classes}
		for i := 0; i < res.Logits.Rows(); i++ {
			row := make([]float32, res.Logits.Cols())
			copy(row, res.Logits.Row(i))
			resp.Logits = append(resp.Logits, row)
		}
		writeJSON(rw, resp)
	})
	mux.HandleFunc("/v1/shards", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, c.topology())
	})
	mux.HandleFunc("/v1/graph/delta", func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, "shard: graph deltas are not supported in sharded mode (fragments are static); apply deltas to a full-graph engine", http.StatusNotImplemented)
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.writePrometheus(rw)
		obs.WritePrometheus(rw)
	})
	return mux
}

func (c *Coordinator) writePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# TYPE seastar_shard_infers counter\nseastar_shard_infers %d\n", c.infers.Load())
	fmt.Fprintf(w, "# TYPE seastar_shard_failures counter\nseastar_shard_failures %d\n", c.failures.Load())
	for s := 0; s < c.k; s++ {
		st := &c.stats[s]
		fmt.Fprintf(w, "seastar_shard_steps{shard=\"%d\"} %d\n", s, st.Steps.Load())
		fmt.Fprintf(w, "seastar_shard_gathers{shard=\"%d\"} %d\n", s, st.Gathers.Load())
		fmt.Fprintf(w, "seastar_shard_errors{shard=\"%d\"} %d\n", s, st.Errors.Load())
		fmt.Fprintf(w, "seastar_shard_bytes_tx{shard=\"%d\"} %d\n", s, st.BytesTx.Load())
		fmt.Fprintf(w, "seastar_shard_bytes_rx{shard=\"%d\"} %d\n", s, st.BytesRx.Load())
		fmt.Fprintf(w, "seastar_shard_step_ns{shard=\"%d\"} %d\n", s, st.StepNs.Load())
		fmt.Fprintf(w, "seastar_shard_gather_ns{shard=\"%d\"} %d\n", s, st.GatherNs.Load())
	}
}

package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/serve"
	"seastar/internal/tensor"
)

func testSpec(arch string) serve.ModelSpec {
	return serve.ModelSpec{Arch: arch, Hidden: 16, Classes: 4, Seed: 7, Alpha: 0.1, K: 4}
}

func testGraph(t testing.TB, n int) (*graph.Graph, *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := graph.ZipfDegree(rng, n, 8, 1.0)
	return g, tensor.Randn(rng, 1, g.N, 16)
}

// deploy spins up k in-process workers plus a coordinator over them and
// returns the coordinator (programmatic) and its HTTP server.
func deploy(t testing.TB, g *graph.Graph, feat *tensor.Tensor, spec serve.ModelSpec, k int) (*Coordinator, []*httptest.Server) {
	t.Helper()
	urls := make([]string, k)
	servers := make([]*httptest.Server, k)
	for s := 0; s < k; s++ {
		w, err := NewWorker(g, feat, spec, k, s, "greedy", device.V100)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		servers[s] = srv
		urls[s] = srv.URL
	}
	c, err := NewCoordinator(CoordinatorConfig{Spec: spec, Workers: urls, Mode: "greedy"}, g)
	if err != nil {
		t.Fatal(err)
	}
	return c, servers
}

func fullForward(t testing.TB, g *graph.Graph, feat *tensor.Tensor, spec serve.ModelSpec) *tensor.Tensor {
	t.Helper()
	m, err := serve.BuildModel(spec, feat.Cols(), 1)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.NewSnapshot(g, feat)
	if err != nil {
		t.Fatal(err)
	}
	env := &serve.ForwardEnv{
		G: snap.Graph(), Feat: snap.Features(),
		Dev: device.New(device.V100), Pool: tensor.NewPool(),
	}
	serve.NormsFor(spec.Arch, snap, env.G, env)
	want, err := m.Forward(env)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestEndToEndBitwise drives real HTTP workers through the coordinator
// and checks every vertex's logits equal the single-process forward bit
// for bit, for each supported arch × shard count.
func TestEndToEndBitwise(t *testing.T) {
	g, feat := testGraph(t, 3000)
	for _, arch := range []string{"gcn", "gat", "appnp"} {
		spec := testSpec(arch)
		want := fullForward(t, g, feat, spec)
		for _, k := range []int{2, 4} {
			c, _ := deploy(t, g, feat, spec, k)
			// Batch through all vertices in chunks, mixing shard owners.
			for lo := 0; lo < g.N; lo += 512 {
				hi := lo + 512
				if hi > g.N {
					hi = g.N
				}
				nodes := make([]int32, 0, hi-lo)
				for v := lo; v < hi; v++ {
					nodes = append(nodes, int32(v))
				}
				res, err := c.Infer(context.Background(), nodes)
				if err != nil {
					t.Fatalf("%s k=%d: %v", arch, k, err)
				}
				for i, v := range nodes {
					for j := 0; j < want.Cols(); j++ {
						if math.Float32bits(res.Logits.At(i, j)) != math.Float32bits(want.At(int(v), j)) {
							t.Fatalf("%s k=%d vertex %d col %d: sharded %g vs full %g",
								arch, k, v, j, res.Logits.At(i, j), want.At(int(v), j))
						}
					}
				}
			}
		}
	}
}

// TestHTTPContract exercises the coordinator's /v1/infer over the wire
// and checks the JSON shape matches the single-process server's.
func TestHTTPContract(t *testing.T) {
	g, feat := testGraph(t, 500)
	spec := testSpec("gcn")
	c, _ := deploy(t, g, feat, spec, 2)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	body, _ := json.Marshal(map[string]any{"nodes": []int32{0, 7, 42}})
	resp, err := http.Post(front.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Nodes   []int32     `json:"nodes"`
		Logits  [][]float32 `json:"logits"`
		Classes []int       `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Nodes) != 3 || len(out.Logits) != 3 || len(out.Classes) != 3 {
		t.Fatalf("shape: %d nodes, %d logits, %d classes", len(out.Nodes), len(out.Logits), len(out.Classes))
	}
	if len(out.Logits[0]) != spec.Classes {
		t.Fatalf("width %d", len(out.Logits[0]))
	}

	// Bad node → 400, not 503.
	body, _ = json.Marshal(map[string]any{"nodes": []int32{int32(g.N)}})
	resp2, err := http.Post(front.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range node: status %d", resp2.StatusCode)
	}

	// Topology endpoint names every worker.
	resp3, err := http.Get(front.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var topo struct {
		Shards  int `json:"shards"`
		Workers []struct {
			Shard int `json:"shard"`
			Owned int `json:"owned"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	if topo.Shards != 2 || len(topo.Workers) != 2 {
		t.Fatalf("topology: %+v", topo)
	}
	owned := 0
	for _, w := range topo.Workers {
		owned += w.Owned
	}
	if owned != g.N {
		t.Fatalf("masters cover %d of %d vertices", owned, g.N)
	}

	// Deltas are a full-graph-engine feature: clean refusal.
	resp4, err := http.Post(front.URL+"/v1/graph/delta", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotImplemented {
		t.Fatalf("delta on coordinator: status %d", resp4.StatusCode)
	}
}

// TestWorkerSequence checks the worker-side protocol: out-of-order
// rounds answer 409, a repeated round idempotently re-serves its cached
// exports, and round 1 resets a finished run.
func TestWorkerSequence(t *testing.T) {
	g, feat := testGraph(t, 300)
	w, err := NewWorker(g, feat, testSpec("gcn"), 2, 0, "greedy", device.V100)
	if err != nil {
		t.Fatal(err)
	}

	// Round 2 before round 1 → sequence error.
	if _, err := w.step(&stepRequest{Gen: staticGen, Round: 2}); err == nil {
		t.Fatal("round 2 accepted cold")
	} else if _, ok := err.(*seqError); !ok {
		t.Fatalf("want seqError, got %v", err)
	}
	// Gather before any round → sequence error.
	if _, err := w.gather(&gatherRequest{Gen: staticGen, Nodes: []int32{0}}); err == nil {
		t.Fatal("gather accepted cold")
	}

	r1, err := w.step(&stepRequest{Gen: staticGen, Round: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent retry of round 1 re-serves identical exports.
	r1b, err := w.step(&stepRequest{Gen: staticGen, Round: 1, Mirrors: nil})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r1.Exports {
		if !bytes.Equal(v, r1b.Exports[k]) {
			t.Fatalf("retry of round 1 changed exports for peer %s", k)
		}
	}

	// Finish, then round 1 again resets cleanly.
	mirrors := map[string][]byte{}
	for _, rows := range w.frag.ImportFrom {
		_ = rows // coordinator would fill these; zero mirrors still steps
	}
	if _, err := w.step(&stepRequest{Gen: staticGen, Round: 2, Mirrors: mirrors}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.gather(&gatherRequest{Gen: staticGen, Nodes: []int32{w.frag.Locals[0]}}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.step(&stepRequest{Gen: staticGen, Round: 1}); err != nil {
		t.Fatalf("round-1 reset: %v", err)
	}

	// Unknown generation and unowned node reject cleanly.
	if _, err := w.step(&stepRequest{Gen: 99, Round: 1}); err == nil {
		t.Fatal("bad generation accepted")
	}
}

// TestKilledWorker kills one worker mid-deployment: in-flight and
// subsequent requests must answer 503 with a Retry-After header — never
// hang, never return wrong data — and rescheduling the worker via
// SetWorker must restore bitwise-correct service.
func TestKilledWorker(t *testing.T) {
	g, feat := testGraph(t, 1000)
	spec := testSpec("gcn")
	want := fullForward(t, g, feat, spec)
	c, servers := deploy(t, g, feat, spec, 4)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	nodes := []int32{1, 2, 3, 5, 8, 13, 21, 34}
	infer := func() (*http.Response, error) {
		body, _ := json.Marshal(map[string]any{"nodes": nodes})
		return http.Post(front.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	}

	resp, err := infer()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", resp.StatusCode)
	}

	// Kill shard 2 and force a resync so the sync path must touch it.
	servers[2].Close()
	c.SetWorker(2, servers[2].URL) // same (dead) URL; clears synced

	resp, err = infer()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("killed worker: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Reschedule shard 2 on a fresh worker; service recovers bitwise.
	w2, err := NewWorker(g, feat, spec, 4, 2, "greedy", device.V100)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(w2.Handler())
	defer srv2.Close()
	c.SetWorker(2, srv2.URL)

	res, err := c.Infer(context.Background(), nodes)
	if err != nil {
		t.Fatalf("post-recovery: %v", err)
	}
	for i, v := range nodes {
		for j := 0; j < want.Cols(); j++ {
			if math.Float32bits(res.Logits.At(i, j)) != math.Float32bits(want.At(int(v), j)) {
				t.Fatalf("post-recovery vertex %d col %d: %g vs %g",
					v, j, res.Logits.At(i, j), want.At(int(v), j))
			}
		}
	}
}

// TestWorkerRestartInPlace kills a worker and brings a cold replacement
// up on the SAME address without telling the coordinator (the
// restart-under-a-stable-DNS-name deployment). The coordinator still
// believes the fleet is synced, so the first request's gather hits a
// worker with no logits — that must surface as a retryable 503 that
// also drops the synced flag, and the next request must resync from
// round 1 and answer bitwise-correctly.
func TestWorkerRestartInPlace(t *testing.T) {
	g, feat := testGraph(t, 1000)
	spec := testSpec("gcn")
	want := fullForward(t, g, feat, spec)
	c, servers := deploy(t, g, feat, spec, 3)

	nodes := []int32{0, 7, 42, 99, 500, 999}
	if _, err := c.Infer(context.Background(), nodes); err != nil {
		t.Fatalf("warm infer: %v", err)
	}

	// Restart shard 1 cold on the same listener address.
	addr := servers[1].Listener.Addr().String()
	servers[1].Close()
	w1, err := NewWorker(g, feat, spec, 3, 1, "greedy", device.V100)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := &httptest.Server{Listener: ln, Config: &http.Server{Handler: w1.Handler()}}
	srv.Start()
	defer srv.Close()

	// First request gathers from the cold worker: retryable failure.
	if _, err := c.Infer(context.Background(), nodes); err == nil {
		t.Fatal("infer against cold restarted worker succeeded without a resync")
	} else if ue := (*unavailableError)(nil); !errors.As(err, &ue) {
		t.Fatalf("cold-worker infer error %v is not retryable", err)
	}

	// Second request must resync the fleet and answer correctly.
	res, err := c.Infer(context.Background(), nodes)
	if err != nil {
		t.Fatalf("post-restart infer: %v", err)
	}
	for i, v := range nodes {
		for j := 0; j < want.Cols(); j++ {
			if math.Float32bits(res.Logits.At(i, j)) != math.Float32bits(want.At(int(v), j)) {
				t.Fatalf("post-restart vertex %d col %d: %g vs %g",
					v, j, res.Logits.At(i, j), want.At(int(v), j))
			}
		}
	}
}

// TestRaceSoak is the -race soak `make race-shard` runs: concurrent
// inference batches against a live 3-shard deployment, with one worker
// killed and rescheduled mid-soak. Every 200 answer must be bitwise
// correct; failures must be 503s.
func TestRaceSoak(t *testing.T) {
	g, feat := testGraph(t, 800)
	spec := testSpec("gcn")
	want := fullForward(t, g, feat, spec)
	c, servers := deploy(t, g, feat, spec, 3)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci)))
			for iter := 0; iter < 30; iter++ {
				nodes := make([]int32, 1+rng.Intn(16))
				for i := range nodes {
					nodes[i] = int32(rng.Intn(g.N))
				}
				body, _ := json.Marshal(map[string]any{"nodes": nodes})
				resp, err := http.Post(front.URL+"/v1/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out struct {
					Logits [][]float32 `json:"logits"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						errs <- decErr
						return
					}
					for i, v := range nodes {
						for j := range out.Logits[i] {
							if math.Float32bits(out.Logits[i][j]) != math.Float32bits(want.At(int(v), j)) {
								errs <- fmt.Errorf("client %d: vertex %d col %d wrong under soak", ci, v, j)
								return
							}
						}
					}
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						errs <- fmt.Errorf("client %d: 503 without Retry-After", ci)
						return
					}
				default:
					errs <- fmt.Errorf("client %d: status %d", ci, resp.StatusCode)
					return
				}
			}
		}(ci)
	}

	// Fault injector: kill shard 1 mid-soak, then reschedule it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		servers[1].Close()
		c.SetWorker(1, servers[1].URL)
		w1, err := NewWorker(g, feat, spec, 3, 1, "greedy", device.V100)
		if err != nil {
			errs <- err
			return
		}
		srv1 := httptest.NewServer(w1.Handler())
		t.Cleanup(srv1.Close)
		c.SetWorker(1, srv1.URL)
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

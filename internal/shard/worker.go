package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/obs"
	"seastar/internal/part"
	"seastar/internal/serve"
	"seastar/internal/tensor"
)

// staticGen is the single generation a shard deployment serves today:
// fragments come from an immutable dataset load, and graph deltas are a
// full-graph-engine feature (the coordinator rejects them cleanly).
const staticGen = 1

// Worker holds one shard's fragment and steps the model over it on the
// coordinator's command. Step rounds serialize under mu (the exchange
// protocol is inherently round-ordered); gathers after the final round
// only read the settled logits and run under the read lock.
type Worker struct {
	frag  *part.Fragment
	model *serve.Model
	env   *serve.ShardEnv
	spec  serve.ModelSpec

	rounds int

	mu     sync.RWMutex
	sf     *serve.ShardForward
	cached map[string][]byte // exports of the last completed round
	logits *tensor.Tensor    // settled after the final round
}

// NewWorker derives shard `index` of k from the full (graph, features):
// it partitions deterministically — every worker and the coordinator
// compute byte-identical owner tables and exchange orders — then keeps
// only its own fragment's rows. The full graph and feature matrix are
// not retained.
func NewWorker(g *graph.Graph, feat *tensor.Tensor, spec serve.ModelSpec, k, index int, mode string, prof device.Profile) (*Worker, error) {
	if index < 0 || index >= k {
		return nil, fmt.Errorf("shard: index %d out of [0,%d)", index, k)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rounds, err := serve.ShardRoundsForSpec(spec)
	if err != nil {
		return nil, err
	}
	p, err := part.Build(g, k, mode)
	if err != nil {
		return nil, err
	}
	m, err := serve.BuildModel(spec, feat.Cols(), 1)
	if err != nil {
		return nil, err
	}
	if prof.SMCount == 0 {
		prof = device.V100
	}
	f := p.Frags[index]
	return &Worker{
		frag:   f,
		model:  m,
		env:    serve.NewShardEnv(f, feat, device.New(prof), tensor.NewPool()),
		spec:   spec,
		rounds: rounds,
	}, nil
}

// Frag exposes the worker's fragment (tests, stats).
func (w *Worker) Frag() *part.Fragment { return w.frag }

// step runs one exchange round. Round 1 always resets the run, which is
// both the cold-start path and the coordinator's recovery path after a
// partial sync. A repeat of the last completed round re-serves the
// cached exports (idempotent retry); anything else is a sequence error.
func (w *Worker) step(req *stepRequest) (*stepResponse, error) {
	if req.Gen != staticGen {
		return nil, fmt.Errorf("shard: generation %d unknown (worker serves %d)", req.Gen, staticGen)
	}
	if req.Round < 1 || req.Round > w.rounds {
		return nil, fmt.Errorf("shard: round %d out of [1,%d]", req.Round, w.rounds)
	}
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()

	if w.sf != nil && req.Round == w.sf.Round() && w.cached != nil {
		return w.respLocked(), nil
	}
	if req.Round == 1 {
		sf, err := serve.NewShardForward(w.model, w.env)
		if err != nil {
			return nil, err
		}
		w.sf, w.logits, w.cached = sf, nil, nil
	} else if w.sf == nil || req.Round != w.sf.Round()+1 {
		have := 0
		if w.sf != nil {
			have = w.sf.Round()
		}
		return nil, &seqError{round: req.Round, have: have}
	}

	for key, block := range req.Mirrors {
		s, err := strconv.Atoi(key)
		if err != nil || s < 0 || s >= w.frag.K {
			return nil, fmt.Errorf("shard: bad mirror source %q", key)
		}
		if err := w.sf.ImportRows(w.frag.ImportFrom[s], bytesToFloats(block)); err != nil {
			return nil, err
		}
	}
	if err := w.sf.StepShard(); err != nil {
		return nil, err
	}

	w.cached = map[string][]byte{}
	if w.sf.Done() {
		logits, err := w.sf.Logits()
		if err != nil {
			return nil, err
		}
		w.logits = logits
	} else {
		for t, rows := range w.frag.ExportTo {
			if len(rows) == 0 {
				continue
			}
			w.cached[strconv.Itoa(t)] = floatsToBytes(w.sf.ExportRows(rows))
		}
	}
	if obs.Enabled() {
		obs.Observe("shard", fmt.Sprintf("w%d/step", w.frag.Shard), time.Since(start))
	}
	return w.respLocked(), nil
}

func (w *Worker) respLocked() *stepResponse {
	return &stepResponse{
		Round:   w.sf.Round(),
		Done:    w.sf.Done(),
		Width:   w.sf.H().Cols(),
		Exports: w.cached,
	}
}

// seqError marks an out-of-order round request (409 on the wire): the
// coordinator restarts sync from round 1 when it sees one.
type seqError struct{ round, have int }

func (e *seqError) Error() string {
	return fmt.Sprintf("shard: round %d out of sequence (worker at %d; restart from round 1)", e.round, e.have)
}

// gather returns final logit rows for owned vertices.
func (w *Worker) gather(req *gatherRequest) (*gatherResponse, error) {
	if req.Gen != 0 && req.Gen != staticGen {
		return nil, fmt.Errorf("shard: generation %d unknown (worker serves %d)", req.Gen, staticGen)
	}
	start := time.Now()
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.logits == nil {
		return nil, &seqError{round: 0, have: 0}
	}
	width := w.logits.Cols()
	out := make([]float32, 0, len(req.Nodes)*width)
	for _, v := range req.Nodes {
		if v < 0 || int(v) >= len(w.frag.LocalOf) {
			return nil, fmt.Errorf("shard: node %d out of range [0,%d)", v, len(w.frag.LocalOf))
		}
		l := w.frag.LocalOf[v] - 1
		if l < 0 || int(l) >= w.frag.Owned {
			return nil, fmt.Errorf("shard: node %d not owned by shard %d", v, w.frag.Shard)
		}
		out = append(out, w.logits.Row(int(l))...)
	}
	if obs.Enabled() {
		obs.Observe("shard", fmt.Sprintf("w%d/gather", w.frag.Shard), time.Since(start))
		obs.Add("shard", fmt.Sprintf("w%d/gather", w.frag.Shard), "rows", int64(len(req.Nodes)))
	}
	return &gatherResponse{Width: width, Rows: floatsToBytes(out)}, nil
}

// Handler is the worker's HTTP surface:
//
//	POST /v1/shard/step    one exchange round (coordinator-driven)
//	POST /v1/shard/gather  final logit rows for owned vertices
//	GET  /v1/shard/info    fragment shape
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus text (obs counters)
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shard/step", func(rw http.ResponseWriter, r *http.Request) {
		var req stepRequest
		if !decodePost(rw, r, &req) {
			return
		}
		resp, err := w.step(&req)
		if err != nil {
			http.Error(rw, err.Error(), workerStatus(err))
			return
		}
		writeJSON(rw, resp)
	})
	mux.HandleFunc("/v1/shard/gather", func(rw http.ResponseWriter, r *http.Request) {
		var req gatherRequest
		if !decodePost(rw, r, &req) {
			return
		}
		resp, err := w.gather(&req)
		if err != nil {
			http.Error(rw, err.Error(), workerStatus(err))
			return
		}
		writeJSON(rw, resp)
	})
	mux.HandleFunc("/v1/shard/info", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, infoResponse{
			Shard: w.frag.Shard, Shards: w.frag.K,
			Arch: w.spec.Arch, Rounds: w.rounds,
			Owned: w.frag.Owned, Mirrors: w.frag.Mirrors(),
			Edges: w.frag.G.M, N: len(w.frag.LocalOf), Gen: staticGen,
		})
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.WritePrometheus(rw)
	})
	return mux
}

func workerStatus(err error) int {
	if _, ok := err.(*seqError); ok {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func decodePost(rw http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v)
}

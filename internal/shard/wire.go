// Package shard is the multi-process serving layer: N workers, each
// holding one vertex-cut fragment (internal/part) and stepping the
// compiled plans over it (serve.ShardForward), behind a coordinator that
// drives the per-layer mirror exchange GAS-style and scatters /v1/infer
// to the owning shards.
//
// Every process derives its fragment deterministically from the same
// (dataset, partition mode, shard count), so there is no fragment wire
// format — only activation rows cross the network. Row blocks travel as
// raw little-endian float32 bytes (base64 inside JSON envelopes):
// bit-exact by construction, with no float-to-decimal round trip to
// reason about.
package shard

import (
	"encoding/binary"
	"math"
)

// stepRequest drives one aggregation round on a worker. Mirrors maps
// source shard index (decimal string — JSON object keys) to the row
// block that shard exported for us last round; empty for round 1, whose
// mirror rows (features / locally-computed h0) are exact already.
// Round 1 also resets any previous run, which is how the coordinator
// recovers a partially-synced fleet after a worker failure.
type stepRequest struct {
	Gen     uint64            `json:"gen"`
	Round   int               `json:"round"`
	Mirrors map[string][]byte `json:"mirrors,omitempty"`
}

// stepResponse returns the round's exports: for each peer shard index,
// the owned rows that peer mirrors, in the fragment's ExportTo order
// (which pairs element-for-element with the peer's ImportFrom order).
type stepResponse struct {
	Round   int               `json:"round"`
	Done    bool              `json:"done"`
	Width   int               `json:"width"`
	Exports map[string][]byte `json:"exports,omitempty"`
}

// gatherRequest asks a worker for final logit rows of vertices it owns
// (global ids; the coordinator routes by the owner table).
type gatherRequest struct {
	Gen   uint64  `json:"gen"`
	Nodes []int32 `json:"nodes"`
}

type gatherResponse struct {
	Width int    `json:"width"`
	Rows  []byte `json:"rows"`
}

// infoResponse describes a worker's fragment for sanity checks.
type infoResponse struct {
	Shard   int    `json:"shard"`
	Shards  int    `json:"shards"`
	Arch    string `json:"arch"`
	Rounds  int    `json:"rounds"`
	Owned   int    `json:"owned"`
	Mirrors int    `json:"mirrors"`
	Edges   int    `json:"edges"`
	N       int    `json:"n"`
	Gen     uint64 `json:"gen"`
}

// floatsToBytes encodes rows as little-endian float32 — the exact bits,
// no decimal round trip.
func floatsToBytes(f []float32) []byte {
	b := make([]byte, len(f)*4)
	for i, v := range f {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}

func bytesToFloats(b []byte) []float32 {
	f := make([]float32, len(b)/4)
	for i := range f {
		f[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return f
}

package dgl

import (
	"math"
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

func newEngine(g *graph.Graph) (*Engine, *device.Device) {
	dev := device.New(device.V100)
	return New(nn.NewEngine(dev), g), dev
}

func TestUpdateAllCopySumForwardBackward(t *testing.T) {
	g := graph.Figure7()
	d, _ := newEngine(g)
	h := d.E.Param(tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1), "h")
	out := d.UpdateAllCopySum(h)
	want := tensor.FromSlice([]float32{9, 4, 4, 2}, 4, 1)
	if !tensor.AllClose(out.Value, want, 1e-6) {
		t.Fatalf("forward: %v", out.Value)
	}
	d.E.Backward(d.E.SumAll(out))
	// d out[v] / d h[u] = #edges u→v; dloss/dh[u] = out-degree(u).
	wantG := tensor.FromSlice([]float32{1, 2, 2, 2}, 4, 1)
	if !tensor.AllClose(h.Grad, wantG, 1e-6) {
		t.Fatalf("backward: %v", h.Grad)
	}
}

func TestUpdateAllUMulESumGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.GNM(rng, 8, 20)
	hT := tensor.Randn(rng, 0.5, 8, 3)
	eT := tensor.Randn(rng, 0.5, 20, 1)

	loss := func(grad bool) (float32, *tensor.Tensor, *tensor.Tensor) {
		d, _ := newEngine(g)
		h := d.E.Param(hT, "h")
		e := d.E.Param(eT, "e")
		out := d.UpdateAllUMulESum(h, e)
		l := d.E.SumAll(d.E.Sigmoid(out))
		if grad {
			d.E.Backward(l)
		}
		return l.Value.At1(0), h.Grad, e.Grad
	}
	_, dh, de := loss(true)

	const eps = 1e-2
	for name, target := range map[string]*tensor.Tensor{"h": hT, "e": eT} {
		analytic := dh
		if name == "e" {
			analytic = de
		}
		for i := 0; i < target.Size(); i++ {
			orig := target.At1(i)
			target.Set1(i, orig+eps)
			up, _, _ := loss(false)
			target.Set1(i, orig-eps)
			down, _, _ := loss(false)
			target.Set1(i, orig)
			num := float64((up - down) / (2 * eps))
			a := float64(analytic.At1(i))
			if math.Abs(a-num)/(math.Max(math.Abs(a), math.Abs(num))+1e-3) > 0.12 {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v", name, i, a, num)
			}
		}
	}
}

func TestApplyEdgesUAddVBackward(t *testing.T) {
	g := graph.Figure7()
	d, _ := newEngine(g)
	a := d.E.Param(tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1), "a")
	b := d.E.Param(tensor.FromSlice([]float32{10, 20, 30, 40}, 4, 1), "b")
	e := d.ApplyEdgesUAddV(a, b)
	if e.Value.Rows() != g.M {
		t.Fatal("edge tensor shape")
	}
	d.E.Backward(d.E.SumAll(e))
	// da[u] = out-degree(u); db[v] = in-degree(v).
	outDeg := g.OutDegrees()
	inDeg := g.InDegrees()
	for v := 0; v < 4; v++ {
		if a.Grad.At(v, 0) != float32(outDeg[v]) || b.Grad.At(v, 0) != float32(inDeg[v]) {
			t.Fatalf("grads at %d: %v %v", v, a.Grad.At(v, 0), b.Grad.At(v, 0))
		}
	}
}

func TestEdgeSoftmaxMatchesPerDstSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := graph.GNM(rng, 10, 40)
	eT := tensor.Randn(rng, 1, 40, 1)
	d, _ := newEngine(g)
	e := d.E.Input(eT, "e")
	a := d.EdgeSoftmax(e)
	// Per destination, weights must sum to 1 and be proportional to exp.
	sums := make([]float32, 10)
	for eid := 0; eid < g.M; eid++ {
		sums[g.Dsts[eid]] += a.Value.At(eid, 0)
	}
	for v := 0; v < 10; v++ {
		if in := int(g.InDegrees()[v]); in > 0 {
			if math.Abs(float64(sums[v])-1) > 1e-4 {
				t.Fatalf("softmax at %d sums to %v", v, sums[v])
			}
		}
	}
}

func TestEdgeSoftmaxGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := graph.GNM(rng, 6, 14)
	eT := tensor.Randn(rng, 0.5, 14, 1)
	loss := func(grad bool) (float32, *tensor.Tensor) {
		d, _ := newEngine(g)
		e := d.E.Param(eT, "e")
		a := d.EdgeSoftmax(e)
		l := d.E.SumAll(d.E.Mul(a, a)) // nonlinear reduction
		if grad {
			d.E.Backward(l)
		}
		return l.Value.At1(0), e.Grad
	}
	_, de := loss(true)
	const eps = 1e-2
	for i := 0; i < eT.Size(); i++ {
		orig := eT.At1(i)
		eT.Set1(i, orig+eps)
		up, _ := loss(false)
		eT.Set1(i, orig-eps)
		down, _ := loss(false)
		eT.Set1(i, orig)
		num := float64((up - down) / (2 * eps))
		a := float64(de.At1(i))
		if math.Abs(a-num)/(math.Max(math.Abs(a), math.Abs(num))+1e-3) > 0.12 {
			t.Fatalf("softmax grad[%d]: analytic %v numeric %v", i, a, num)
		}
	}
}

// naiveRGCN computes Σ_r Σ_{u∈N_r(v)} norm_e (h[u] @ W_r) directly.
func naiveRGCN(g *graph.Graph, h, ws, norm *tensor.Tensor) *tensor.Tensor {
	din, dout := ws.Shape()[1], ws.Shape()[2]
	out := tensor.New(g.N, dout)
	for e := 0; e < g.M; e++ {
		src, dst := int(g.Srcs[e]), int(g.Dsts[e])
		base := int(g.EdgeTypes[e]) * din * dout
		nv := norm.At(e, 0)
		hr, or := h.Row(src), out.Row(dst)
		for o := 0; o < dout; o++ {
			var s float32
			for i := 0; i < din; i++ {
				s += hr[i] * ws.Data()[base+i*dout+o]
			}
			or[o] += nv * s
		}
	}
	return out
}

func heteroFixture(t *testing.T, rng *rand.Rand) (*graph.Graph, *tensor.Tensor, *tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	g := graph.GNM(rng, 12, 50)
	graph.RandomEdgeTypes(rng, g, 4)
	h := tensor.Randn(rng, 0.5, 12, 3)
	ws := tensor.Randn(rng, 0.5, 4, 3, 2)
	norm := tensor.Uniform(rng, 0.3, 1, 50, 1)
	return g, h, ws, norm
}

func TestRGCNLoopAndBMMMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g, hT, wsT, normT := heteroFixture(t, rng)
	want := naiveRGCN(g, hT, wsT, normT)

	for _, variant := range []string{"loop", "bmm"} {
		d, _ := newEngine(g)
		h := d.E.Param(hT, "h")
		ws := d.E.Param(wsT, "ws")
		norm := d.E.Input(normT, "norm")
		var out *nn.Variable
		var err error
		if variant == "loop" {
			out, err = d.RGCNLoop(h, ws, norm)
		} else {
			out, err = d.RGCNBMM(h, ws, norm)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(out.Value, want, 1e-4) {
			t.Fatalf("%s forward mismatch: %g", variant, tensor.MaxAbsDiff(out.Value, want))
		}
	}
}

func TestRGCNVariantsAgreeOnGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g, hT, wsT, normT := heteroFixture(t, rng)
	grads := func(variant string) (*tensor.Tensor, *tensor.Tensor) {
		d, _ := newEngine(g)
		h := d.E.Param(hT, "h")
		ws := d.E.Param(wsT, "ws")
		norm := d.E.Input(normT, "norm")
		var out *nn.Variable
		var err error
		if variant == "loop" {
			out, err = d.RGCNLoop(h, ws, norm)
		} else {
			out, err = d.RGCNBMM(h, ws, norm)
		}
		if err != nil {
			t.Fatal(err)
		}
		d.E.Backward(d.E.SumAll(d.E.Sigmoid(out)))
		return h.Grad, ws.Grad
	}
	dh1, dw1 := grads("loop")
	dh2, dw2 := grads("bmm")
	if !tensor.AllClose(dh1, dh2, 1e-4) || !tensor.AllClose(dw1, dw2, 1e-4) {
		t.Fatal("loop and bmm gradients diverge")
	}
}

func TestRGCNLoopSlowerThanBMM(t *testing.T) {
	// Table 3's headline: the per-relation loop is orders of magnitude
	// slower than the batched variant.
	rng := rand.New(rand.NewSource(36))
	g := graph.GNM(rng, 200, 2000)
	graph.RandomEdgeTypes(rng, g, 30)
	hT := tensor.Randn(rng, 0.5, 200, 8)
	wsT := tensor.Randn(rng, 0.5, 30, 8, 8)
	normT := tensor.Uniform(rng, 0.3, 1, 2000, 1)

	run := func(variant string) float64 {
		d, dev := newEngine(g)
		h := d.E.Param(hT, "h")
		ws := d.E.Param(wsT, "ws")
		norm := d.E.Input(normT, "norm")
		var out *nn.Variable
		var err error
		if variant == "loop" {
			out, err = d.RGCNLoop(h, ws, norm)
		} else {
			out, err = d.RGCNBMM(h, ws, norm)
		}
		if err != nil {
			t.Fatal(err)
		}
		d.E.Backward(d.E.SumAll(out))
		return dev.ElapsedNs()
	}
	loop, bmm := run("loop"), run("bmm")
	if loop < 10*bmm {
		t.Fatalf("loop (%v ns) should be ≫ bmm (%v ns)", loop, bmm)
	}
}

func TestRGCNRequiresEdgeTypes(t *testing.T) {
	g := graph.Figure7()
	d, _ := newEngine(g)
	h := d.E.Param(tensor.New(4, 2), "h")
	ws := d.E.Param(tensor.New(2, 2, 2), "ws")
	norm := d.E.Input(tensor.New(7, 1), "norm")
	if _, err := d.RGCNLoop(h, ws, norm); err == nil {
		t.Fatal("RGCNLoop without edge types accepted")
	}
	if _, err := d.RGCNBMM(h, ws, norm); err == nil {
		t.Fatal("RGCNBMM without edge types accepted")
	}
}

func TestCheckVertexTensor(t *testing.T) {
	g := graph.Figure7()
	d, _ := newEngine(g)
	if err := d.CheckVertexTensor(d.E.Input(tensor.New(4, 2), "ok")); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckVertexTensor(d.E.Input(tensor.New(3, 2), "bad")); err == nil {
		t.Fatal("wrong-size tensor accepted")
	}
}

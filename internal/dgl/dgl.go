// Package dgl reimplements the DGL-0.4 baseline the paper compares
// against (§2, §7): a whole-graph message-passing API whose graph
// operators execute with minigun-style edge-parallel kernels — per-edge
// binary search over the CSR offsets, atomic aggregation — and whose
// common patterns use the fused BinaryReduce kernel to avoid
// materializing message tensors. Each primitive is an autograd Function
// of the nn backend, with DGL-style backward kernels.
package dgl

import (
	"fmt"

	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// Engine couples the nn backend with a graph, mirroring a DGLGraph bound
// to a device.
type Engine struct {
	E *nn.Engine
	G *graph.Graph

	// byType caches per-relation edge lists for the hetero path.
	byType [][]int32
}

// New creates a DGL-style engine.
func New(e *nn.Engine, g *graph.Graph) *Engine { return &Engine{E: e, G: g} }

// UpdateAllCopySum is update_all(copy_src('h'), sum) — the GCN pattern —
// executed as one fused BinaryReduce kernel.
func (d *Engine) UpdateAllCopySum(h *nn.Variable) *nn.Variable {
	return d.E.Apply(&copySumFn{d: d}, "dgl.copy_sum", h)
}

type copySumFn struct{ d *Engine }

func (f *copySumFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	return kernels.BinaryReduce(f.d.E.Dev, f.d.G,
		kernels.Operand{T: in[0], Kind: kernels.KSrc}, kernels.Operand{},
		kernels.BLeft, gir.AggSum, true, "dgl.copy_sum")
}

func (f *copySumFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	dh := kernels.BinaryReduce(f.d.E.Dev, f.d.G,
		kernels.Operand{T: g, Kind: kernels.KDst}, kernels.Operand{},
		kernels.BLeft, gir.AggSum, false, "dgl.copy_sum.bwd")
	return []*tensor.Tensor{dh}
}

// UpdateAllUMulESum is update_all(u_mul_e('h','a'), sum) — the GAT
// aggregation — as a fused BinaryReduce kernel.
func (d *Engine) UpdateAllUMulESum(h, e *nn.Variable) *nn.Variable {
	return d.E.Apply(&uMulESumFn{d: d}, "dgl.u_mul_e_sum", h, e)
}

type uMulESumFn struct{ d *Engine }

func (f *uMulESumFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	ctx.SaveRef("h", in[0])
	ctx.SaveRef("e", in[1])
	return kernels.BinaryReduce(f.d.E.Dev, f.d.G,
		kernels.Operand{T: in[0], Kind: kernels.KSrc},
		kernels.Operand{T: in[1], Kind: kernels.KEdge},
		kernels.BMul, gir.AggSum, true, "dgl.u_mul_e_sum")
}

func (f *uMulESumFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	h, e := ctx.Saved("h"), ctx.Saved("e")
	dh := kernels.BinaryReduce(f.d.E.Dev, f.d.G,
		kernels.Operand{T: g, Kind: kernels.KDst},
		kernels.Operand{T: e, Kind: kernels.KEdge},
		kernels.BMul, gir.AggSum, false, "dgl.u_mul_e_sum.dh")
	var de *tensor.Tensor
	if e.Cols() == 1 && h.Cols() > 1 {
		de = kernels.EdgeBinary(f.d.E.Dev, f.d.G,
			kernels.Operand{T: h, Kind: kernels.KSrc},
			kernels.Operand{T: g, Kind: kernels.KDst},
			kernels.BDot, "dgl.u_mul_e_sum.de")
	} else {
		de = kernels.EdgeBinary(f.d.E.Dev, f.d.G,
			kernels.Operand{T: h, Kind: kernels.KSrc},
			kernels.Operand{T: g, Kind: kernels.KDst},
			kernels.BMul, "dgl.u_mul_e_sum.de")
	}
	ctx.Engine.AllocBytes(int64(de.Size()) * 4)
	return []*tensor.Tensor{dh, de}
}

// ApplyEdgesUAddV is apply_edges(u_add_v('a','b')), materializing an
// [M, d] edge tensor (the step whose memory PyG-style systems multiply).
func (d *Engine) ApplyEdgesUAddV(a, b *nn.Variable) *nn.Variable {
	return d.E.Apply(&uAddVFn{d: d}, "dgl.u_add_v", a, b)
}

type uAddVFn struct{ d *Engine }

func (f *uAddVFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	return kernels.EdgeBinary(f.d.E.Dev, f.d.G,
		kernels.Operand{T: in[0], Kind: kernels.KSrc},
		kernels.Operand{T: in[1], Kind: kernels.KDst},
		kernels.BAdd, "dgl.u_add_v")
}

func (f *uAddVFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	da := kernels.BinaryReduce(f.d.E.Dev, f.d.G,
		kernels.Operand{T: g, Kind: kernels.KEdge}, kernels.Operand{},
		kernels.BLeft, gir.AggSum, false, "dgl.u_add_v.da")
	db := kernels.BinaryReduce(f.d.E.Dev, f.d.G,
		kernels.Operand{T: g, Kind: kernels.KEdge}, kernels.Operand{},
		kernels.BLeft, gir.AggSum, true, "dgl.u_add_v.db")
	return []*tensor.Tensor{da, db}
}

// EdgeSoftmax normalizes an [M, d] edge tensor per destination vertex —
// DGL's fn.edge_softmax, lowered to four minigun kernels (max, sub-exp,
// sum, div) plus three in the backward pass.
func (d *Engine) EdgeSoftmax(e *nn.Variable) *nn.Variable {
	return d.E.Apply(&edgeSoftmaxFn{d: d}, "dgl.edge_softmax", e)
}

type edgeSoftmaxFn struct{ d *Engine }

func (f *edgeSoftmaxFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	dev, g := f.d.E.Dev, f.d.G
	e := in[0]
	mx := kernels.BinaryReduce(dev, g,
		kernels.Operand{T: e, Kind: kernels.KEdge}, kernels.Operand{},
		kernels.BLeft, gir.AggMax, true, "dgl.esm.max")
	shifted := kernels.EdgeBinary(dev, g,
		kernels.Operand{T: e, Kind: kernels.KEdge},
		kernels.Operand{T: mx, Kind: kernels.KDst},
		kernels.BSub, "dgl.esm.sub")
	ex := tensor.Exp(shifted)
	f.d.E.ChargeDense("dgl.esm.exp", float64(ex.Size()), int64(ex.Size())*4, int64(ex.Size())*4)
	s := kernels.BinaryReduce(dev, g,
		kernels.Operand{T: ex, Kind: kernels.KEdge}, kernels.Operand{},
		kernels.BLeft, gir.AggSum, true, "dgl.esm.sum")
	a := kernels.EdgeBinary(dev, g,
		kernels.Operand{T: ex, Kind: kernels.KEdge},
		kernels.Operand{T: s, Kind: kernels.KDst},
		kernels.BDiv, "dgl.esm.div")
	ctx.Save("a", a)
	return a
}

func (f *edgeSoftmaxFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	dev, gg := f.d.E.Dev, f.d.G
	a := ctx.Saved("a")
	prod := tensor.Mul(a, g)
	f.d.E.ChargeDense("dgl.esm.bwd.mul", float64(prod.Size()), int64(prod.Size())*8, int64(prod.Size())*4)
	r := kernels.BinaryReduce(dev, gg,
		kernels.Operand{T: prod, Kind: kernels.KEdge}, kernels.Operand{},
		kernels.BLeft, gir.AggSum, true, "dgl.esm.bwd.sum")
	diff := kernels.EdgeBinary(dev, gg,
		kernels.Operand{T: g, Kind: kernels.KEdge},
		kernels.Operand{T: r, Kind: kernels.KDst},
		kernels.BSub, "dgl.esm.bwd.sub")
	de := tensor.Mul(a, diff)
	f.d.E.ChargeDense("dgl.esm.bwd.mul2", float64(de.Size()), int64(de.Size())*8, int64(de.Size())*4)
	return []*tensor.Tensor{de}
}

// CheckVertexTensor validates an input is [N, d] for this graph.
func (d *Engine) CheckVertexTensor(v *nn.Variable) error {
	if v.Value.Rows() != d.G.N {
		return fmt.Errorf("dgl: tensor has %d rows for %d vertices", v.Value.Rows(), d.G.N)
	}
	return nil
}

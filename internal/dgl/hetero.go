package dgl

import (
	"fmt"
	"strconv"

	"seastar/internal/kernels"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// hostSlicingNs models DGL-0.4's host-side overhead per relation in the
// heterogeneous path: Python-level edge_subgraph construction, per-type
// dispatch and autograd bookkeeping. The paper's Table 3 gap between DGL
// and DGL-bmm (two orders of magnitude on aifb) is dominated by exactly
// this per-relation serialization.
const hostSlicingNs = 3.5e6

// typeEdges returns, for each relation, the edge ids of that type.
func (d *Engine) typeEdges() ([][]int32, error) {
	if d.G.EdgeTypes == nil {
		return nil, fmt.Errorf("dgl: graph has no edge types")
	}
	if d.byType == nil {
		d.byType = make([][]int32, d.G.NumEdgeTypes)
		for e, t := range d.G.EdgeTypes {
			d.byType[t] = append(d.byType[t], int32(e))
		}
	}
	return d.byType, nil
}

// weightSlice views relation r of a [R,in,out] weight tensor.
func weightSlice(ws *tensor.Tensor, r int) *tensor.Tensor {
	shape := ws.Shape()
	din, dout := shape[1], shape[2]
	return tensor.FromSlice(ws.Data()[r*din*dout:(r+1)*din*dout], din, dout)
}

// RGCNLoop is DGL's native heterogeneous execution: relations processed
// one by one — a full dense projection of every vertex per relation, a
// masked aggregation over that relation's edges, and host-side slicing
// overhead per relation, for both passes.
//
// h is [N,in], ws is [R,in,out], norm is the per-edge 1/c_{v,r} of [M,1].
func (d *Engine) RGCNLoop(h, ws, norm *nn.Variable) (*nn.Variable, error) {
	if _, err := d.typeEdges(); err != nil {
		return nil, err
	}
	return d.E.Apply(&rgcnLoopFn{d: d}, "dgl.rgcn_loop", h, ws, norm), nil
}

type rgcnLoopFn struct{ d *Engine }

func (f *rgcnLoopFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	d := f.d
	h, ws, norm := in[0], in[1], in[2]
	ctx.SaveRef("h", h)
	ctx.SaveRef("ws", ws)
	ctx.SaveRef("norm", norm)
	byType, _ := d.typeEdges()
	din := ws.Shape()[1]
	dout := ws.Shape()[2]
	out := tensor.New(d.G.N, dout)
	for r, edges := range byType {
		wr := weightSlice(ws, r)
		hr := tensor.MatMul(h, wr)
		d.E.ChargeDense("dgl.rgcn.mm."+strconv.Itoa(r),
			float64(h.Rows())*float64(din)*float64(dout),
			int64(h.Size()+wr.Size())*4, int64(hr.Size())*4)
		// DGL's autograd keeps every per-relation projection alive.
		ctx.Save("hr"+strconv.Itoa(r), hr)
		for _, e := range edges {
			src, dst := int(d.G.Srcs[e]), int(d.G.Dsts[e])
			nv := norm.At(int(e), 0)
			or, hrRow := out.Row(dst), hr.Row(src)
			for j := range or {
				or[j] += nv * hrRow[j]
			}
		}
		d.E.Dev.LaunchKernel(kernels.MinigunLaunch(d.G, "dgl.rgcn.agg",
			dout, int64(dout)*4+4, int64(dout)*4, 2, true, len(edges)))
		d.E.Dev.HostSync(hostSlicingNs)
	}
	return out
}

func (f *rgcnLoopFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	d := f.d
	h, ws, norm := ctx.Saved("h"), ctx.Saved("ws"), ctx.Saved("norm")
	byType, _ := d.typeEdges()
	din := ws.Shape()[1]
	dout := ws.Shape()[2]
	dh := tensor.New(h.Shape()...)
	dws := tensor.New(ws.Shape()...)
	for r, edges := range byType {
		wr := weightSlice(ws, r)
		// dhr[u] = Σ_{e∈r, u→v} norm_e · g[v]
		dhr := tensor.New(h.Rows(), dout)
		for _, e := range edges {
			src, dst := int(d.G.Srcs[e]), int(d.G.Dsts[e])
			nv := norm.At(int(e), 0)
			dr, gr := dhr.Row(src), g.Row(dst)
			for j := range dr {
				dr[j] += nv * gr[j]
			}
		}
		d.E.Dev.LaunchKernel(kernels.MinigunLaunch(d.G, "dgl.rgcn.agg.bwd",
			dout, int64(dout)*4+4, int64(dout)*4, 2, true, len(edges)))
		// dW_r = hᵀ dhr ; dh += dhr wrᵀ
		dwr := tensor.TMatMul(h, dhr)
		copy(dws.Data()[r*din*dout:(r+1)*din*dout], dwr.Data())
		tensor.AddInPlace(dh, tensor.MatMulT(dhr, wr))
		d.E.ChargeDense("dgl.rgcn.mm.bwd",
			2*float64(h.Rows())*float64(din)*float64(dout),
			int64(h.Size()+dhr.Size()+wr.Size())*4, int64(dwr.Size()+dh.Size())*4)
		d.E.Dev.HostSync(hostSlicingNs)
	}
	return []*tensor.Tensor{dh, dws, nil}
}

// RGCNBMM is the manually optimized DGL-bmm variant: one gather of source
// features to edges, a single batched per-relation matrix multiply, and
// one scatter — no per-relation host loop, at the cost of materializing
// [M,in] and [M,out] edge tensors.
func (d *Engine) RGCNBMM(h, ws, norm *nn.Variable) (*nn.Variable, error) {
	if d.G.EdgeTypes == nil {
		return nil, fmt.Errorf("dgl: graph has no edge types")
	}
	return d.E.Apply(&rgcnBMMFn{d: d}, "dgl.rgcn_bmm", h, ws, norm), nil
}

type rgcnBMMFn struct{ d *Engine }

func (f *rgcnBMMFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	d := f.d
	h, ws, norm := in[0], in[1], in[2]
	ctx.SaveRef("ws", ws)
	ctx.SaveRef("norm", norm)
	he := kernels.Gather(d.E.Dev, d.G, h, true, "dgl.bmm.gather")
	ctx.Save("he", he)
	me := kernels.EdgeTypedMatMul(d.E.ChargeDense, d.G, he, ws, false, "dgl.bmm.bmm")
	scaled := tensor.MulColVec(me, norm.Reshape(d.G.M))
	d.E.ChargeDense("dgl.bmm.norm", float64(me.Size()), int64(me.Size())*8, int64(me.Size())*4)
	ctx.Save("me", scaled)
	return kernels.ScatterSum(d.E.Dev, d.G, scaled, true, "dgl.bmm.scatter")
}

func (f *rgcnBMMFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	d := f.d
	ws, norm, he := ctx.Saved("ws"), ctx.Saved("norm"), ctx.Saved("he")
	// de[e] = norm_e · g[dst(e)]
	ge := kernels.Gather(d.E.Dev, d.G, g, false, "dgl.bmm.bwd.gather")
	de := tensor.MulColVec(ge, norm.Reshape(d.G.M))
	d.E.ChargeDense("dgl.bmm.bwd.norm", float64(de.Size()), int64(de.Size())*8, int64(de.Size())*4)
	dws := kernels.EdgeTypedOuterAcc(d.E.ChargeDense, d.G, he, de, ws.Shape(), "dgl.bmm.bwd.dw")
	// dhe[e] = de[e] @ W_rᵀ, then scatter to sources.
	dhe := kernels.EdgeTypedMatMul(d.E.ChargeDense, d.G, de, ws, true, "dgl.bmm.bwd.bmm")
	dh := kernels.ScatterSum(d.E.Dev, d.G, dhe, false, "dgl.bmm.bwd.scatter")
	return []*tensor.Tensor{dh, dws, nil}
}

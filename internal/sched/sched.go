// Package sched is the shared CPU scheduling layer of the execution
// engine: the software analogue of the paper's degree-sorting + dynamic
// load balancing design (§6.3.3), applied to the host-side interpreter
// instead of GPU blocks.
//
// It provides two pieces:
//
//   - partitioning: EdgeBalanced splits CSR rows into contiguous chunks
//     of approximately equal *edge* weight (not row count), so hub
//     vertices of a power-law graph do not pile onto one worker;
//   - dispatch: Do feeds chunks to a persistent worker pool through an
//     atomic work counter — the claim loop the paper implements with the
//     GPU's hardware block scheduler. Workers are long-lived goroutines,
//     so a steady-state launch allocates nothing but its closure.
//
// Every parallel path in the repository (fused kernels, dense matmuls,
// elementwise tensor ops) goes through this package, replacing the
// previously duplicated maxProcs/chunking helpers.
package sched

import (
	"runtime"
)

// MaxProcs bounds the parallelism of every CPU execution path. It is a
// variable rather than a constant so tests can force multi-worker
// execution on small machines; production code treats it as read-only.
var MaxProcs = runtime.GOMAXPROCS(0)

// SetMaxProcs overrides the parallelism bound (clamped to at least 1)
// and returns the previous value. Benchmarks use it to measure scaling
// at controlled worker counts; it must not be called concurrently with
// running work.
func SetMaxProcs(n int) int {
	prev := MaxProcs
	if n < 1 {
		n = 1
	}
	MaxProcs = n
	return prev
}

// Range is a half-open interval [Lo, Hi) of rows or elements.
type Range struct{ Lo, Hi int }

// Workers returns the number of workers worth waking for n independent
// work items: min(MaxProcs, n), and at least 1.
func Workers(n int) int {
	w := MaxProcs
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Oversubscribe returns the chunk budget for workers workers at
// perWorker chunks each, clamped so a degenerate input still yields one
// chunk. It centralises the chunk-count arithmetic the partitioners and
// the measured re-planner share: granularity changes move only how many
// pieces the row space is cut into, never which rows reduce together.
func Oversubscribe(workers, perWorker int) int {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	return workers * perWorker
}

// Uniform splits [0, n) into parts equal-count ranges (the legacy static
// partition). Fewer ranges are returned when n < parts.
func Uniform(n, parts int) []Range {
	if n <= 0 || parts < 1 {
		return nil
	}
	size := (n + parts - 1) / parts
	out := make([]Range, 0, parts)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Range{lo, hi})
	}
	return out
}

// EdgeBalanced partitions the len(offsets)-1 rows of a CSR into at most
// maxChunks contiguous ranges of approximately equal weight, where row r
// weighs (offsets[r+1]-offsets[r]) + rowCost edge-units. On degree-sorted
// power-law graphs this puts a handful of hub rows in the first chunks
// and thousands of tail rows in the last ones, so stealing workers finish
// together instead of one worker owning every hub.
func EdgeBalanced(offsets []int64, rowCost float64, maxChunks int) []Range {
	n := len(offsets) - 1
	if n <= 0 {
		return nil
	}
	if maxChunks < 1 {
		maxChunks = 1
	}
	total := float64(offsets[n]-offsets[0]) + rowCost*float64(n)
	target := total / float64(maxChunks)
	out := make([]Range, 0, maxChunks)
	lo := 0
	var acc float64
	for r := 0; r < n; r++ {
		acc += float64(offsets[r+1]-offsets[r]) + rowCost
		// Close the chunk once it reaches the target, unless doing so
		// would create more chunks than requested.
		if acc >= target && len(out) < maxChunks-1 {
			out = append(out, Range{lo, r + 1})
			lo = r + 1
			acc = 0
		}
	}
	if lo < n {
		out = append(out, Range{lo, n})
	}
	return out
}

// ChunkWeights returns each range's weight under the EdgeBalanced cost
// model: edges(range) + rowCost·rows(range). Used for offline schedule
// analysis (benchmarks, tests).
func ChunkWeights(offsets []int64, rowCost float64, rs []Range) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = float64(offsets[r.Hi]-offsets[r.Lo]) + rowCost*float64(r.Hi-r.Lo)
	}
	return out
}

// Makespan list-schedules the chunk weights onto p workers in order —
// each chunk goes to the earliest-free worker, which is exactly what the
// stealing loop achieves on idle cores — and returns the finishing time
// of the last worker.
func Makespan(weights []float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	busy := make([]float64, p)
	for _, w := range weights {
		min := 0
		for i := 1; i < p; i++ {
			if busy[i] < busy[min] {
				min = i
			}
		}
		busy[min] += w
	}
	var max float64
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	return max
}

// Do runs fn(worker, chunk) for every chunk in [0, chunks) using up to
// `workers` concurrent workers with atomic work stealing, on the shared
// process-lifetime pool. Worker ids are dense in [0, workers) and unique
// within the call, so callers can index worker-local arenas with them.
// The calling goroutine participates as worker 0, and Do returns only
// when every chunk has completed: writes made by fn happen-before Do's
// return.
func Do(chunks, workers int, fn func(worker, chunk int)) {
	Default().Do(chunks, workers, fn)
}

// forGrain trades dispatch overhead against steal granularity for For:
// each worker gets a few chunks so a slow chunk can be compensated.
const forChunksPerWorker = 4

// For runs f over contiguous sub-ranges of [0, n), serially when n is
// below grain elements (or only one worker is available), otherwise in
// parallel chunks of at least grain elements. It is the replacement for
// the hand-rolled parallel loops that used to live in tensor and kernels.
func For(n, grain int, f func(lo, hi int)) {
	forOn(Default(), n, grain, f)
}

func forOn(p *Pool, n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	maxChunks := (n + grain - 1) / grain
	workers := Workers(maxChunks)
	if workers <= 1 {
		f(0, n)
		return
	}
	chunks := workers * forChunksPerWorker
	if chunks > maxChunks {
		chunks = maxChunks
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	p.Do(chunks, workers, func(_, c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		f(lo, hi)
	})
}

// Package sched is the shared CPU scheduling layer of the execution
// engine: the software analogue of the paper's degree-sorting + dynamic
// load balancing design (§6.3.3), applied to the host-side interpreter
// instead of GPU blocks.
//
// It provides two pieces:
//
//   - partitioning: EdgeBalanced splits CSR rows into contiguous chunks
//     of approximately equal *edge* weight (not row count), so hub
//     vertices of a power-law graph do not pile onto one worker;
//   - dispatch: Do feeds chunks to a persistent worker pool through an
//     atomic work counter — the claim loop the paper implements with the
//     GPU's hardware block scheduler. Workers are long-lived goroutines,
//     so a steady-state launch allocates nothing but its closure.
//
// Every parallel path in the repository (fused kernels, dense matmuls,
// elementwise tensor ops) goes through this package, replacing the
// previously duplicated maxProcs/chunking helpers.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxProcs bounds the parallelism of every CPU execution path. It is a
// variable rather than a constant so tests can force multi-worker
// execution on small machines; production code treats it as read-only.
var MaxProcs = runtime.GOMAXPROCS(0)

// Range is a half-open interval [Lo, Hi) of rows or elements.
type Range struct{ Lo, Hi int }

// Workers returns the number of workers worth waking for n independent
// work items: min(MaxProcs, n), and at least 1.
func Workers(n int) int {
	w := MaxProcs
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Uniform splits [0, n) into parts equal-count ranges (the legacy static
// partition). Fewer ranges are returned when n < parts.
func Uniform(n, parts int) []Range {
	if n <= 0 || parts < 1 {
		return nil
	}
	size := (n + parts - 1) / parts
	out := make([]Range, 0, parts)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Range{lo, hi})
	}
	return out
}

// EdgeBalanced partitions the len(offsets)-1 rows of a CSR into at most
// maxChunks contiguous ranges of approximately equal weight, where row r
// weighs (offsets[r+1]-offsets[r]) + rowCost edge-units. On degree-sorted
// power-law graphs this puts a handful of hub rows in the first chunks
// and thousands of tail rows in the last ones, so stealing workers finish
// together instead of one worker owning every hub.
func EdgeBalanced(offsets []int64, rowCost float64, maxChunks int) []Range {
	n := len(offsets) - 1
	if n <= 0 {
		return nil
	}
	if maxChunks < 1 {
		maxChunks = 1
	}
	total := float64(offsets[n]-offsets[0]) + rowCost*float64(n)
	target := total / float64(maxChunks)
	out := make([]Range, 0, maxChunks)
	lo := 0
	var acc float64
	for r := 0; r < n; r++ {
		acc += float64(offsets[r+1]-offsets[r]) + rowCost
		// Close the chunk once it reaches the target, unless doing so
		// would create more chunks than requested.
		if acc >= target && len(out) < maxChunks-1 {
			out = append(out, Range{lo, r + 1})
			lo = r + 1
			acc = 0
		}
	}
	if lo < n {
		out = append(out, Range{lo, n})
	}
	return out
}

// ChunkWeights returns each range's weight under the EdgeBalanced cost
// model: edges(range) + rowCost·rows(range). Used for offline schedule
// analysis (benchmarks, tests).
func ChunkWeights(offsets []int64, rowCost float64, rs []Range) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = float64(offsets[r.Hi]-offsets[r.Lo]) + rowCost*float64(r.Hi-r.Lo)
	}
	return out
}

// Makespan list-schedules the chunk weights onto p workers in order —
// each chunk goes to the earliest-free worker, which is exactly what the
// stealing loop achieves on idle cores — and returns the finishing time
// of the last worker.
func Makespan(weights []float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	busy := make([]float64, p)
	for _, w := range weights {
		min := 0
		for i := 1; i < p; i++ {
			if busy[i] < busy[min] {
				min = i
			}
		}
		busy[min] += w
	}
	var max float64
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	return max
}

// job is one Do invocation. Chunks are claimed with an atomic counter —
// the same protocol as a GPU atomic block scheduler — so a worker stuck
// on a heavy chunk simply claims fewer, while idle workers drain the
// rest.
type job struct {
	fn     func(worker, chunk int)
	next   int64 // atomic claim counter
	chunks int
	wg     sync.WaitGroup
}

func (j *job) run(worker int) {
	for {
		c := int(atomic.AddInt64(&j.next, 1)) - 1
		if c >= j.chunks {
			return
		}
		j.fn(worker, c)
	}
}

// workItem hands a job slot to a pooled worker.
type workItem struct {
	j *job
	w int
}

var (
	jobPool = sync.Pool{New: func() interface{} { return new(job) }}
	// workCh feeds the persistent workers. The small buffer smooths
	// bursts; when it is full the caller just keeps more chunks for
	// itself (sends never block).
	workCh  = make(chan workItem, 64)
	spawned int64 // atomic count of persistent workers started
)

// ensureWorkers lazily grows the persistent pool to n goroutines. Pool
// workers live for the life of the process, so steady-state dispatch
// performs no goroutine creation.
func ensureWorkers(n int) {
	for {
		cur := atomic.LoadInt64(&spawned)
		if int(cur) >= n {
			return
		}
		if atomic.CompareAndSwapInt64(&spawned, cur, cur+1) {
			go func() {
				for it := range workCh {
					it.j.run(it.w)
					it.j.wg.Done()
				}
			}()
		}
	}
}

// Do runs fn(worker, chunk) for every chunk in [0, chunks) using up to
// `workers` concurrent workers with atomic work stealing. Worker ids are
// dense in [0, workers) and unique within the call, so callers can index
// worker-local arenas with them. The calling goroutine participates as
// worker 0, and Do returns only when every chunk has completed: writes
// made by fn happen-before Do's return.
func Do(chunks, workers int, fn func(worker, chunk int)) {
	if chunks <= 0 {
		return
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			fn(0, c)
		}
		return
	}
	ensureWorkers(workers - 1)
	j := jobPool.Get().(*job)
	j.fn = fn
	j.chunks = chunks
	atomic.StoreInt64(&j.next, 0)
	for w := 1; w < workers; w++ {
		j.wg.Add(1)
		select {
		case workCh <- workItem{j, w}:
		default:
			// Pool saturated: the caller picks up the slack via stealing.
			j.wg.Done()
		}
	}
	j.run(0)
	j.wg.Wait()
	j.fn = nil
	jobPool.Put(j)
}

// forGrain trades dispatch overhead against steal granularity for For:
// each worker gets a few chunks so a slow chunk can be compensated.
const forChunksPerWorker = 4

// For runs f over contiguous sub-ranges of [0, n), serially when n is
// below grain elements (or only one worker is available), otherwise in
// parallel chunks of at least grain elements. It is the replacement for
// the hand-rolled parallel loops that used to live in tensor and kernels.
func For(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	maxChunks := (n + grain - 1) / grain
	workers := Workers(maxChunks)
	if workers <= 1 {
		f(0, n)
		return
	}
	chunks := workers * forChunksPerWorker
	if chunks > maxChunks {
		chunks = maxChunks
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	Do(chunks, workers, func(_, c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		f(lo, hi)
	})
}

package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines polls until the process goroutine count drops to at
// most want, failing the test after a deadline. Goroutine teardown is
// asynchronous (Close waits for worker exit, but the runtime may lag in
// accounting), so a bounded retry loop beats a single snapshot.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: have %d, want ≤ %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPoolCloseReleasesWorkers(t *testing.T) {
	if MaxProcs < 2 {
		t.Skip("needs ≥2 procs to spawn pool workers")
	}
	base := runtime.NumGoroutine()

	p := NewPool()
	var count int64
	p.Do(64, MaxProcs, func(_, _ int) { atomic.AddInt64(&count, 1) })
	if count != 64 {
		t.Fatalf("ran %d/64 chunks", count)
	}
	if p.NumWorkers() == 0 {
		t.Fatal("expected pool to spawn persistent workers")
	}

	p.Close()
	// Every spawned worker must exit: the process returns to (at most)
	// its pre-pool goroutine count.
	waitGoroutines(t, base)
}

func TestPoolCloseIsIdempotentAndDoStillRuns(t *testing.T) {
	p := NewPool()
	p.Do(8, 4, func(_, _ int) {})
	p.Close()
	p.Close() // second close must not panic

	// A closed pool degrades to serial execution, not to lost work.
	var count int64
	p.Do(32, 8, func(w, _ int) {
		if w != 0 {
			t.Errorf("closed pool used worker %d", w)
		}
		atomic.AddInt64(&count, 1)
	})
	if count != 32 {
		t.Fatalf("ran %d/32 chunks on closed pool", count)
	}
}

func TestPoolConcurrentDoAndClose(t *testing.T) {
	// Dispatching concurrently with Close must neither panic (send on
	// closed channel) nor drop chunks.
	for iter := 0; iter < 50; iter++ {
		p := NewPool()
		done := make(chan int64)
		go func() {
			var count int64
			for i := 0; i < 20; i++ {
				p.Do(16, 4, func(_, _ int) { atomic.AddInt64(&count, 1) })
			}
			done <- atomic.LoadInt64(&count)
		}()
		time.Sleep(time.Duration(iter%5) * 100 * time.Microsecond)
		p.Close()
		if got := <-done; got != 20*16 {
			t.Fatalf("iter %d: ran %d/%d chunks across Close", iter, got, 20*16)
		}
	}
}

func TestWorkerIDsDenseAndUnique(t *testing.T) {
	p := NewPool()
	defer p.Close()
	const workers = 4
	var seen [workers]int64
	p.Do(1024, workers, func(w, _ int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
			return
		}
		atomic.AddInt64(&seen[w], 1)
	})
	var total int64
	for _, s := range seen {
		total += s
	}
	if total != 1024 {
		t.Fatalf("ran %d/1024 chunks", total)
	}
}

package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// forceProcs pretends the machine has n cores for the duration of a test
// so the parallel paths are exercised even on small CI boxes.
func forceProcs(t *testing.T, n int) {
	t.Helper()
	old := MaxProcs
	MaxProcs = n
	t.Cleanup(func() { MaxProcs = old })
}

func TestUniform(t *testing.T) {
	cases := []struct{ n, parts int }{{0, 4}, {1, 4}, {4, 4}, {10, 3}, {100, 8}, {7, 100}}
	for _, c := range cases {
		rs := Uniform(c.n, c.parts)
		if c.n == 0 {
			if rs != nil {
				t.Fatalf("Uniform(0,%d) = %v, want nil", c.parts, rs)
			}
			continue
		}
		if len(rs) > c.parts {
			t.Fatalf("Uniform(%d,%d) produced %d ranges", c.n, c.parts, len(rs))
		}
		checkCover(t, rs, c.n)
	}
}

func TestOversubscribe(t *testing.T) {
	cases := []struct{ workers, perWorker, want int }{
		{4, 8, 32},
		{1, 1, 1},
		{0, 8, 8},   // degenerate worker count clamps to 1
		{4, 0, 4},   // degenerate granularity clamps to 1
		{-3, -2, 1}, // both degenerate
		{8, 2, 16},
	}
	for _, c := range cases {
		if got := Oversubscribe(c.workers, c.perWorker); got != c.want {
			t.Fatalf("Oversubscribe(%d, %d) = %d, want %d", c.workers, c.perWorker, got, c.want)
		}
	}
}

func TestEdgeBalancedCoversAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		offsets := make([]int64, n+1)
		for r := 0; r < n; r++ {
			deg := int64(0)
			// Skewed degrees: a few heavy rows, many empty ones.
			switch rng.Intn(4) {
			case 0:
				deg = int64(rng.Intn(500))
			case 1:
				deg = int64(rng.Intn(10))
			}
			offsets[r+1] = offsets[r] + deg
		}
		maxChunks := 1 + rng.Intn(16)
		rs := EdgeBalanced(offsets, 2, maxChunks)
		if len(rs) > maxChunks {
			t.Fatalf("trial %d: %d chunks > maxChunks %d", trial, len(rs), maxChunks)
		}
		checkCover(t, rs, n)
	}
}

func TestEdgeBalancedBeatsUniformOnSkew(t *testing.T) {
	// A degree-sorted power-law-ish degree sequence: deg(r) ∝ 1/(r+1).
	const n, p = 4096, 8
	offsets := make([]int64, n+1)
	for r := 0; r < n; r++ {
		offsets[r+1] = offsets[r] + int64(8*n/(r+1))
	}
	const rowCost = 4
	eb := EdgeBalanced(offsets, rowCost, p*8)
	un := Uniform(n, p)
	mkEB := Makespan(ChunkWeights(offsets, rowCost, eb), p)
	mkUN := Makespan(ChunkWeights(offsets, rowCost, un), p)
	if mkEB*1.5 > mkUN {
		t.Fatalf("edge-balanced makespan %.0f not ≥1.5x better than uniform %.0f", mkEB, mkUN)
	}
	// And the balance must be real: no chunk (except possibly a single
	// unsplittable hub row) should exceed ~2 targets of weight.
	total := float64(offsets[n]) + rowCost*float64(n)
	for i, w := range ChunkWeights(offsets, rowCost, eb) {
		r := eb[i]
		if r.Hi-r.Lo == 1 {
			continue // single row: cannot split further
		}
		if w > 2.5*total/float64(p*8) {
			t.Fatalf("chunk %d (%v) weight %.0f exceeds 2.5x target %.0f", i, r, w, total/float64(p*8))
		}
	}
}

func TestMakespan(t *testing.T) {
	if got := Makespan([]float64{4, 1, 1, 1, 1}, 2); got != 4 {
		t.Fatalf("Makespan = %v, want 4", got)
	}
	if got := Makespan([]float64{1, 1, 1, 1}, 4); got != 1 {
		t.Fatalf("Makespan = %v, want 1", got)
	}
	if got := Makespan(nil, 3); got != 0 {
		t.Fatalf("Makespan(nil) = %v, want 0", got)
	}
}

func TestDoRunsEveryChunkOnce(t *testing.T) {
	forceProcs(t, 8)
	for _, chunks := range []int{1, 2, 7, 64, 500} {
		var count int64
		seen := make([]int64, chunks)
		Do(chunks, Workers(chunks), func(w, c int) {
			if w < 0 || w >= 8 {
				t.Errorf("worker id %d out of range", w)
			}
			atomic.AddInt64(&seen[c], 1)
			atomic.AddInt64(&count, 1)
		})
		if count != int64(chunks) {
			t.Fatalf("chunks=%d: ran %d times", chunks, count)
		}
		for c, v := range seen {
			if v != 1 {
				t.Fatalf("chunk %d ran %d times", c, v)
			}
		}
	}
}

func TestDoWorkerIDsAreUniqueWithinCall(t *testing.T) {
	forceProcs(t, 8)
	// Each worker slot owns one cell; concurrent reuse of a slot within
	// a call would race (and trip -race) or double-count.
	slots := make([]int64, 8)
	Do(256, 8, func(w, c int) {
		atomic.AddInt64(&slots[w], 1)
	})
	var total int64
	for _, v := range slots {
		total += v
	}
	if total != 256 {
		t.Fatalf("slot counts sum to %d, want 256", total)
	}
}

func TestDoConcurrentCallers(t *testing.T) {
	forceProcs(t, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				var sum int64
				Do(32, 4, func(_, c int) {
					atomic.AddInt64(&sum, int64(c))
				})
				if sum != 32*31/2 {
					t.Errorf("goroutine %d iter %d: sum %d", g, iter, sum)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFor(t *testing.T) {
	forceProcs(t, 8)
	for _, n := range []int{0, 1, 63, 64, 1000, 100003} {
		out := make([]int32, n)
		For(n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i]++
			}
		})
		for i, v := range out {
			if v != 1 {
				t.Fatalf("n=%d: element %d visited %d times", n, i, v)
			}
		}
	}
}

func TestForSerialBelowGrain(t *testing.T) {
	forceProcs(t, 8)
	calls := 0
	For(63, 64, func(lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("small For made %d calls, want 1 (serial)", calls)
	}
}

func checkCover(t *testing.T, rs []Range, n int) {
	t.Helper()
	next := 0
	for _, r := range rs {
		if r.Lo != next || r.Hi <= r.Lo || r.Hi > n {
			t.Fatalf("bad range %v (next=%d, n=%d) in %v", r, next, n, rs)
		}
		next = r.Hi
	}
	if next != n {
		t.Fatalf("ranges cover [0,%d), want [0,%d)", next, n)
	}
}

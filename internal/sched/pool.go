package sched

import (
	"sync"
	"sync/atomic"
)

// job is one Do invocation. Chunks are claimed with an atomic counter —
// the same protocol as a GPU atomic block scheduler — so a worker stuck
// on a heavy chunk simply claims fewer, while idle workers drain the
// rest.
type job struct {
	fn     func(worker, chunk int)
	next   int64 // atomic claim counter
	chunks int
	wg     sync.WaitGroup
}

func (j *job) run(worker int) {
	for {
		c := int(atomic.AddInt64(&j.next, 1)) - 1
		if c >= j.chunks {
			return
		}
		j.fn(worker, c)
	}
}

// workItem hands a job slot to a pooled worker.
type workItem struct {
	j *job
	w int
}

var jobPool = sync.Pool{New: func() interface{} { return new(job) }}

// Pool is a set of persistent worker goroutines fed through a shared
// channel. Workers are spawned lazily up to the demand of the largest Do
// call and live until Close, so steady-state dispatch creates no
// goroutines. Most callers use the shared Default pool; owners of
// bounded-lifetime systems (servers, tests) can create their own so
// Close can verify that no workers leak.
type Pool struct {
	// mu serializes dispatch (read side) against Close (write side):
	// Do holds the read lock across its channel sends, so Close can
	// only close the channel when no send is in flight.
	mu      sync.RWMutex
	closed  bool
	workCh  chan workItem
	spawned int64 // atomic count of persistent workers started
	workers sync.WaitGroup
}

// NewPool creates an empty worker pool. The small channel buffer smooths
// bursts; when it is full the caller just keeps more chunks for itself
// (sends never block).
func NewPool() *Pool {
	return &Pool{workCh: make(chan workItem, 64)}
}

var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the shared process-lifetime pool used by the
// package-level Do and For.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool() })
	return defaultPool
}

// ensureWorkers lazily grows the pool to n goroutines. Callers hold
// p.mu.RLock, which excludes Close: every worker registered here is
// observed by Close's WaitGroup wait.
func (p *Pool) ensureWorkers(n int) {
	for {
		cur := atomic.LoadInt64(&p.spawned)
		if int(cur) >= n {
			return
		}
		if atomic.CompareAndSwapInt64(&p.spawned, cur, cur+1) {
			p.workers.Add(1)
			go func() {
				defer p.workers.Done()
				for it := range p.workCh {
					it.j.run(it.w)
					it.j.wg.Done()
				}
			}()
		}
	}
}

// NumWorkers reports how many persistent workers the pool has spawned.
func (p *Pool) NumWorkers() int { return int(atomic.LoadInt64(&p.spawned)) }

// Do runs fn(worker, chunk) for every chunk in [0, chunks) using up to
// `workers` concurrent workers with atomic work stealing. See the
// package-level Do for the contract. On a closed pool every chunk runs
// serially on the calling goroutine — correctness does not depend on
// pool lifetime.
func (p *Pool) Do(chunks, workers int, fn func(worker, chunk int)) {
	if chunks <= 0 {
		return
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			fn(0, c)
		}
		return
	}
	j := jobPool.Get().(*job)
	j.fn = fn
	j.chunks = chunks
	atomic.StoreInt64(&j.next, 0)

	p.mu.RLock()
	if !p.closed {
		p.ensureWorkers(workers - 1)
		for w := 1; w < workers; w++ {
			j.wg.Add(1)
			select {
			case p.workCh <- workItem{j, w}:
			default:
				// Pool saturated: the caller picks up the slack via
				// stealing.
				j.wg.Done()
			}
		}
	}
	p.mu.RUnlock()

	j.run(0)
	j.wg.Wait()
	j.fn = nil
	jobPool.Put(j)
}

// For is the Pool-scoped equivalent of the package-level For.
func (p *Pool) For(n, grain int, f func(lo, hi int)) {
	forOn(p, n, grain, f)
}

// Close tears the pool's workers down and waits for them to exit. Do
// calls issued after (or racing with) Close run their chunks serially on
// the caller; in-flight jobs complete normally. Closing twice is a no-op.
// The shared Default pool should never be closed.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.workCh)
	}
	p.mu.Unlock()
	p.workers.Wait()
}

package sched

import (
	"testing"
)

// FuzzEdgeBalanced asserts the partitioner's structural invariants on
// arbitrary degree sequences: the returned ranges exactly tile [0, n) in
// order, never exceed the requested chunk count, and ChunkWeights
// conserves total weight.
func FuzzEdgeBalanced(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(4))
	f.Add([]byte{0, 0, 0, 0}, uint8(1))
	f.Add([]byte{255, 0, 255, 0, 7, 7, 7}, uint8(3))
	f.Add([]byte{}, uint8(8))
	f.Add([]byte{200, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, uint8(5))

	f.Fuzz(func(t *testing.T, degrees []byte, chunks uint8) {
		if len(degrees) > 1<<12 {
			degrees = degrees[:1<<12]
		}
		n := len(degrees)
		offsets := make([]int64, n+1)
		for i, d := range degrees {
			offsets[i+1] = offsets[i] + int64(d)
		}
		maxChunks := int(chunks)
		rs := EdgeBalanced(offsets, 1, maxChunks)

		if n == 0 {
			if rs != nil {
				t.Fatalf("expected no ranges for empty CSR, got %v", rs)
			}
			return
		}
		if maxChunks < 1 {
			maxChunks = 1
		}
		if len(rs) > maxChunks {
			t.Fatalf("%d ranges exceed requested %d", len(rs), maxChunks)
		}
		// Exact ordered tiling of [0, n).
		next := 0
		for i, r := range rs {
			if r.Lo != next {
				t.Fatalf("range %d starts at %d, want %d (ranges %v)", i, r.Lo, next, rs)
			}
			if r.Hi <= r.Lo {
				t.Fatalf("range %d empty or inverted: %v", i, r)
			}
			next = r.Hi
		}
		if next != n {
			t.Fatalf("ranges cover [0,%d), want [0,%d)", next, n)
		}
		// Weight conservation under the partition cost model.
		var total float64
		for _, w := range ChunkWeights(offsets, 1, rs) {
			total += w
		}
		want := float64(offsets[n]) + float64(n)
		if diff := total - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("chunk weights sum to %v, want %v", total, want)
		}
	})
}

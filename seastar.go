// Package seastar is a from-scratch Go reproduction of "Seastar:
// Vertex-Centric Programming for Graph Neural Networks" (EuroSys 2021).
//
// It provides:
//
//   - a vertex-centric programming model: write the logic of one center
//     vertex against symbolic neighbours; the system traces it into a
//     graph-typed intermediate representation (GIR);
//   - automatic differentiation on the GIR and the seastar operator
//     fusion that compiles both passes into fused kernels with
//     feature-adaptive thread groups, locality-centric (vertex-parallel
//     edge-sequential) execution, degree sorting and dynamic load
//     balancing;
//   - a deterministic GPU cost-model simulator standing in for the
//     paper's CUDA devices, so kernels compute real values on the CPU
//     while simulated time and device memory reproduce the shape of the
//     paper's evaluation; and
//   - the DGL-style and PyG-style baselines, the four evaluated models
//     (GCN, GAT, APPNP, R-GCN), the twelve Table-2 datasets as synthetic
//     equivalents, and a benchmark harness for every figure and table.
//
// Quick start:
//
//	sess, _ := seastar.NewSession(seastar.WithGPU("V100"))
//	g, _ := seastar.FromEdges(n, srcs, dsts)
//	_ = sess.SetGraph(g)
//	prog, _ := sess.Compile(func(b *seastar.Builder) seastar.UDF {
//	    b.VFeature("h", 16)
//	    W := b.Param("W", 16, 8)
//	    return func(v *seastar.Vertex) *seastar.Value {
//	        return v.Nbr("h").MatMul(W).AggSum()
//	    }
//	})
//	out, _ := prog.Apply(map[string]*seastar.Variable{"h": h}, nil,
//	    map[string]*seastar.Variable{"W": w})
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package seastar

import (
	"seastar/internal/core"
	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// Session, compilation and execution.
type (
	// Session owns a simulated GPU and the autograd engine.
	Session = core.Session
	// Program is a compiled vertex-centric program.
	Program = core.Program
	// Option configures NewSession.
	Option = core.Option
)

// NewSession creates a Seastar session (default GPU: V100).
func NewSession(opts ...Option) (*Session, error) { return core.NewSession(opts...) }

// WithGPU selects the simulated GPU ("V100", "2080Ti", "1080Ti").
func WithGPU(name string) Option { return core.WithGPU(name) }

// WithWorkScale declares reduced-scale inputs for cost extrapolation.
func WithWorkScale(s float64) Option { return core.WithWorkScale(s) }

// WithDegreeSort toggles the degree-sorting preprocessing SetGraph
// applies (§6.3.3); it is on by default.
func WithDegreeSort(on bool) Option { return core.WithDegreeSort(on) }

// Vertex-centric programming (the tracer API of §4).
type (
	// Builder registers features/parameters and traces UDFs.
	Builder = gir.Builder
	// Vertex is the symbolic center vertex v.
	Vertex = gir.Vertex
	// Value is a symbolic graph-typed tensor.
	Value = gir.Value
	// UDF is a vertex-centric user-defined function.
	UDF = gir.UDF
	// AggKind selects a reduction for hierarchical aggregation.
	AggKind = gir.AggKind
)

// Aggregation kinds for Value.AggHier.
const (
	AggSum  = gir.AggSum
	AggMax  = gir.AggMax
	AggMin  = gir.AggMin
	AggMean = gir.AggMean
)

// Graphs.
type Graph = graph.Graph

// FromEdges builds a graph over n vertices from src/dst edge arrays.
func FromEdges(n int, srcs, dsts []int32) (*Graph, error) {
	return graph.FromEdges(n, srcs, dsts)
}

// Tensors and autograd (the DL backend of §5.3).
type (
	// Tensor is a dense float32 tensor.
	Tensor = tensor.Tensor
	// Variable is an autograd tensor.
	Variable = nn.Variable
	// Engine is the define-by-run autograd engine.
	Engine = nn.Engine
)

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice wraps data in a tensor of the given shape.
func TensorFromSlice(data []float32, shape ...int) *Tensor {
	return tensor.FromSlice(data, shape...)
}

// Optimizers.
type (
	// Adam is the Adam optimizer.
	Adam = nn.Adam
	// SGD is plain gradient descent.
	SGD = nn.SGD
)

// NewAdam creates an Adam optimizer over params.
func NewAdam(params []*Variable, lr float32) *Adam { return nn.NewAdam(params, lr) }

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*Variable, lr float32) *SGD { return nn.NewSGD(params, lr) }

// GPUs lists the simulated device names available to WithGPU.
func GPUs() []string {
	ps := device.Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

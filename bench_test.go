// Benchmarks regenerating the paper's evaluation. Each benchmark runs the
// corresponding experiment harness on reduced-scale datasets (the device
// simulator extrapolates to full scale) and reports the simulated
// measurements as custom metrics: simulated per-epoch milliseconds
// ("sim-ms/ep-<system>") or peak memory ("peak-MB-<system>"), so the
// paper-shape comparisons are visible directly in the benchmark output.
//
//	go test -bench=. -benchmem
//
// The full-size sweep lives in cmd/seastar-bench.
package seastar_test

import (
	"testing"

	"seastar/internal/bench"
	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/kernels"
	"seastar/internal/models"
	"seastar/internal/train"
)

// benchConfig is the reduced-scale configuration used by all benchmarks.
func benchConfig(gpu string) bench.Config {
	return bench.Config{
		Epochs: 3, Warmup: 1, Hidden: 16, Seed: 1,
		GPUs: []string{gpu},
		ScaleOverride: func(name string) float64 {
			switch name {
			case "reddit":
				return 1.0 / 128
			case "bgs":
				return 1.0 / 16
			case "ca_physics", "amz_comp":
				return 1.0 / 8
			case "aifb", "mutag":
				return 1.0 / 4
			default:
				return 1.0 / 4
			}
		},
	}
}

func reportCells(b *testing.B, ms []bench.Measurement, memory bool) {
	for _, m := range ms {
		label := string(m.System)
		switch {
		case m.Result.OOM:
			b.ReportMetric(-1, "peak-MB-"+label) // OOM sentinel
		case memory:
			b.ReportMetric(m.PeakMB(), "peak-MB-"+label)
		default:
			b.ReportMetric(m.EpochMs(), "sim-ms/ep-"+label)
		}
	}
}

// benchFig10 runs one Figure-10 cell set (model × dataset on one GPU).
func benchFig10(b *testing.B, model, dataset, gpu string) {
	cfg := benchConfig(gpu)
	cfg.Models = []string{model}
	cfg.Datasets = []string{dataset}
	var ms []bench.Measurement
	for i := 0; i < b.N; i++ {
		ms = bench.Fig10(cfg)
	}
	reportCells(b, ms, false)
}

// Figure 10(a): GAT per-epoch time.
func BenchmarkFig10_GAT_Pubmed_V100(b *testing.B)   { benchFig10(b, "gat", "pubmed", "V100") }
func BenchmarkFig10_GAT_AmzComp_V100(b *testing.B)  { benchFig10(b, "gat", "amz_comp", "V100") }
func BenchmarkFig10_GAT_Reddit_1080Ti(b *testing.B) { benchFig10(b, "gat", "reddit", "1080Ti") }
func BenchmarkFig10_GAT_Cora_2080Ti(b *testing.B)   { benchFig10(b, "gat", "cora", "2080Ti") }
func BenchmarkFig10_GAT_CaCS_1080Ti(b *testing.B)   { benchFig10(b, "gat", "ca_cs", "1080Ti") }

// Figure 10(b): GCN per-epoch time.
func BenchmarkFig10_GCN_Pubmed_V100(b *testing.B)     { benchFig10(b, "gcn", "pubmed", "V100") }
func BenchmarkFig10_GCN_Citeseer_2080Ti(b *testing.B) { benchFig10(b, "gcn", "citeseer", "2080Ti") }
func BenchmarkFig10_GCN_AmzPhoto_1080Ti(b *testing.B) { benchFig10(b, "gcn", "amz_photo", "1080Ti") }
func BenchmarkFig10_GCN_Reddit_V100(b *testing.B)     { benchFig10(b, "gcn", "reddit", "V100") }

// Figure 10(c): APPNP per-epoch time.
func BenchmarkFig10_APPNP_Corafull_V100(b *testing.B) { benchFig10(b, "appnp", "corafull", "V100") }
func BenchmarkFig10_APPNP_Pubmed_1080Ti(b *testing.B) { benchFig10(b, "appnp", "pubmed", "1080Ti") }
func BenchmarkFig10_APPNP_Reddit_2080Ti(b *testing.B) { benchFig10(b, "appnp", "reddit", "2080Ti") }

// Figure 11: peak memory on the 11 GB device (PyG OOMs on reddit).
func benchFig11(b *testing.B, model, dataset string) {
	cfg := benchConfig("2080Ti")
	cfg.Models = []string{model}
	cfg.Datasets = []string{dataset}
	var ms []bench.Measurement
	for i := 0; i < b.N; i++ {
		ms = bench.Fig11(cfg)
	}
	reportCells(b, ms, true)
}

func BenchmarkFig11_GCN_Corafull(b *testing.B)    { benchFig11(b, "gcn", "corafull") }
func BenchmarkFig11_GCN_Reddit(b *testing.B)      { benchFig11(b, "gcn", "reddit") }
func BenchmarkFig11_GAT_CaCS(b *testing.B)        { benchFig11(b, "gat", "ca_cs") }
func BenchmarkFig11_APPNP_Reddit(b *testing.B)    { benchFig11(b, "appnp", "reddit") }
func BenchmarkFig11_APPNP_CaPhysics(b *testing.B) { benchFig11(b, "appnp", "ca_physics") }

// Table 3: R-GCN per-epoch time, five systems.
func benchTable3(b *testing.B, dataset, gpu string) {
	cfg := benchConfig(gpu)
	cfg.Datasets = []string{dataset}
	var ms []bench.Measurement
	for i := 0; i < b.N; i++ {
		ms = bench.Table3(cfg)
	}
	reportCells(b, ms, false)
}

func BenchmarkTable3_AIFB_V100(b *testing.B)    { benchTable3(b, "aifb", "V100") }
func BenchmarkTable3_Mutag_2080Ti(b *testing.B) { benchTable3(b, "mutag", "2080Ti") }
func BenchmarkTable3_BGS_1080Ti(b *testing.B)   { benchTable3(b, "bgs", "1080Ti") }

// Table 4: R-GCN peak memory.
func benchTable4(b *testing.B, dataset string) {
	cfg := benchConfig("2080Ti")
	cfg.Datasets = []string{dataset}
	var ms []bench.Measurement
	for i := 0; i < b.N; i++ {
		ms = bench.Table4(cfg)
	}
	reportCells(b, ms, true)
}

func BenchmarkTable4_AIFB(b *testing.B)  { benchTable4(b, "aifb") }
func BenchmarkTable4_Mutag(b *testing.B) { benchTable4(b, "mutag") }
func BenchmarkTable4_BGS(b *testing.B)   { benchTable4(b, "bgs") }

// Figure 12: the neighbour-access microbenchmark. Reports the speedup of
// each kernel variant over the DGL binary-search baseline.
func benchFig12(b *testing.B, gpu string, sizes []int) {
	cfg := benchConfig(gpu)
	var pts []bench.Fig12Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.Fig12(cfg, sizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Variant == bench.VariantDGL {
			continue
		}
		b.ReportMetric(p.Speedup, "speedup-"+string(p.Variant)+"-w"+itoa(p.FeatureSize))
	}
}

func BenchmarkFig12_V100(b *testing.B)   { benchFig12(b, "V100", []int{602, 64, 16, 1}) }
func BenchmarkFig12_2080Ti(b *testing.B) { benchFig12(b, "2080Ti", []int{602, 64, 16, 1}) }
func BenchmarkFig12_1080Ti(b *testing.B) { benchFig12(b, "1080Ti", []int{602, 64, 16, 1}) }

// Ablation: the kernel-level designs on a real model (GAT on a skewed
// graph) instead of the microbenchmark — quantifies what each of the
// §6.3 optimizations contributes to end-to-end training.
func BenchmarkAblationKernelDesigns(b *testing.B) {
	ds := datasets.MustLoad("amz_photo", 1.0/8, 1)
	run := func(cfg kernels.Config, sorted bool) float64 {
		dev := device.NewScaled(device.GTX1080Ti, ds.Scale)
		env, err := models.NewEnvChecked(dev, ds, 1)
		if err != nil {
			b.Fatal(err)
		}
		env.RT.Cfg = cfg
		_ = sorted // the env always degree-sorts; cfg varies the rest
		m, err := models.NewGAT(env, models.SysSeastar, 16)
		if err != nil {
			b.Fatal(err)
		}
		res := train.Run(env, m, train.Options{Epochs: 3, Warmup: 1, LR: 0.01})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		return res.AvgEpochNs / 1e6
	}
	var basic, fa, atomic, full float64
	for i := 0; i < b.N; i++ {
		basic = run(kernels.Config{BlockSize: 256, FeatureAdaptive: false}, true)
		fa = run(kernels.Config{BlockSize: 256, FeatureAdaptive: true, Sched: device.SchedStatic}, true)
		atomic = run(kernels.Config{BlockSize: 256, FeatureAdaptive: true, Sched: device.SchedAtomic}, true)
		full = run(kernels.DefaultConfig(), true)
	}
	b.ReportMetric(basic, "sim-ms/ep-basic")
	b.ReportMetric(fa, "sim-ms/ep-fa-static")
	b.ReportMetric(atomic, "sim-ms/ep-fa-atomic")
	b.ReportMetric(full, "sim-ms/ep-full")
}

// Ablation: requires-grad pruning (backward units skipped for inputs that
// need no gradient) — compare kernel counts with and without.
func BenchmarkAblationBackwardPruning(b *testing.B) {
	ds := datasets.MustLoad("pubmed", 1.0/8, 1)
	var withMs, withoutMs float64
	for i := 0; i < b.N; i++ {
		// Features as Input (no grad): pruned backward.
		dev := device.NewScaled(device.V100, ds.Scale)
		env, err := models.NewEnvChecked(dev, ds, 1)
		if err != nil {
			b.Fatal(err)
		}
		m, err := models.NewGCN(env, models.SysSeastar, 16)
		if err != nil {
			b.Fatal(err)
		}
		res := train.Run(env, m, train.Options{Epochs: 3, Warmup: 1, LR: 0.01})
		withMs = res.AvgEpochNs / 1e6
		// The DGL baseline for contrast.
		dev2 := device.NewScaled(device.V100, ds.Scale)
		env2, err := models.NewEnvChecked(dev2, ds, 1)
		if err != nil {
			b.Fatal(err)
		}
		m2, err := models.NewGCN(env2, models.SysDGL, 16)
		if err != nil {
			b.Fatal(err)
		}
		res2 := train.Run(env2, m2, train.Options{Epochs: 3, Warmup: 1, LR: 0.01})
		withoutMs = res2.AvgEpochNs / 1e6
	}
	b.ReportMetric(withMs, "sim-ms/ep-seastar")
	b.ReportMetric(withoutMs, "sim-ms/ep-dgl")
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

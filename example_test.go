package seastar_test

import (
	"fmt"

	"seastar"
)

// Example compiles the paper's GCN body and shows the execution plan the
// seastar fusion FSM produces: the dense matmul stays a backend op, the
// graph-dependent multiply-and-aggregate fuses into one kernel.
func Example() {
	sess, _ := seastar.NewSession(seastar.WithGPU("V100"))
	g, _ := seastar.FromEdges(3, []int32{0, 1, 2}, []int32{1, 2, 0})
	_ = sess.SetGraph(g)

	prog, _ := sess.Compile(func(b *seastar.Builder) seastar.UDF {
		b.VFeature("h", 4)
		b.VFeature("norm", 1)
		W := b.Param("W", 4, 2)
		return func(v *seastar.Vertex) *seastar.Value {
			return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
		}
	})
	fmt.Print(prog.PlanSummary())
	// The backward pass aggregates over the reverse CSR (A:S).
	//
	// Output:
	// forward units:
	//   unit 0 [dense]: %2=MatMul<S>
	//   unit 1 [seastar]: %4=Mul<S> %5=Agg<D>
	// backward units:
	//   unit 0 [seastar]: %1=EdgeView<E> %2=Agg<S> %4=Mul<S> %10=Mul<S> %11=RowSum<S>
	//   unit 1 [dense]: %6=MatMulT<S>
	//   unit 2 [paramgrad]: %8=ParamGradMM<P>
}

// Command seastar-convert writes a graph + features + labels to the
// page-aligned on-disk store format (internal/store, DESIGN.md §16)
// that seastar-train -graph-store memory-maps for out-of-core training:
//
//	seastar-convert -dataset reddit -scale 0.5 -o reddit.sgs
//	seastar-convert -zipf 100000,16,1.1 -feat-dim 64 -classes 16 -o big.sgs
//	seastar-convert -check big.sgs          # validate + fingerprint an existing file
//
// -dataset converts one of the paper's synthetic datasets (same
// generator and seed semantics as the rest of the tools, so the stored
// content is reproducible from the command line alone); -zipf writes a
// power-law graph of any size. -verify reopens the written file and
// re-hashes every payload byte against the header fingerprint.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"seastar/internal/datasets"
	"seastar/internal/graph"
	"seastar/internal/store"
	"seastar/internal/tensor"
)

func main() {
	dataset := flag.String("dataset", "", "dataset name to convert (see seastar-train -list)")
	scale := flag.Float64("scale", 0, "dataset instantiation scale (0 = default)")
	seed := flag.Int64("seed", 1, "generation seed (recorded content depends on it)")
	zipf := flag.String("zipf", "", "synthesize a Zipf graph instead: n,avgDeg,alpha (e.g. 100000,16,1.1)")
	featDim := flag.Int("feat-dim", 64, "zipf: feature dimensionality (0 = structure-only store)")
	classes := flag.Int("classes", 16, "zipf: label class count")
	out := flag.String("o", "", "output store file (required unless -check)")
	verify := flag.Bool("verify", true, "reopen the written file and verify the content fingerprint")
	check := flag.String("check", "", "validate an existing store file and print its header, then exit")
	flag.Parse()

	if *check != "" {
		if err := runCheck(*check); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("-o is required"))
	}
	if (*dataset == "") == (*zipf == "") {
		fatal(fmt.Errorf("exactly one of -dataset or -zipf must be set"))
	}

	var src *store.Source
	var err error
	if *dataset != "" {
		src, err = fromDataset(*dataset, *scale, *seed)
	} else {
		src, err = fromZipf(*zipf, *featDim, *classes, *seed)
	}
	if err != nil {
		fatal(err)
	}
	if err := store.WriteFile(*out, src); err != nil {
		fatal(err)
	}
	st, err := store.Open(*out)
	if err != nil {
		fatal(fmt.Errorf("reopen just-written store: %w", err))
	}
	defer st.Close()
	fmt.Printf("%s: N=%d, M=%d, d=%d, %d classes, %.1f MB (fingerprint %#x)\n",
		*out, st.N(), st.M(), st.FeatDim(), st.NumClasses(),
		float64(st.Bytes())/(1<<20), st.Fingerprint())
	if *verify {
		if err := st.VerifyFingerprint(); err != nil {
			fatal(err)
		}
		if err := st.Graph().Validate(); err != nil {
			fatal(err)
		}
		fmt.Println("verify: content fingerprint and graph structure OK")
	}
}

func fromDataset(name string, scale float64, seed int64) (*store.Source, error) {
	if scale == 0 {
		scale = datasets.DefaultScale(name)
	}
	ds, err := datasets.Load(name, scale, seed)
	if err != nil {
		return nil, err
	}
	return &store.Source{G: ds.G, Feat: ds.Feat, Labels: ds.Labels, NumClasses: ds.NumClasses}, nil
}

func fromZipf(spec string, featDim, classes int, seed int64) (*store.Source, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -zipf %q, want n,avgDeg,alpha", spec)
	}
	n, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	avg, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	alpha, err3 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err1 != nil || err2 != nil || err3 != nil || n < 2 || avg < 1 {
		return nil, fmt.Errorf("bad -zipf %q, want n,avgDeg,alpha", spec)
	}
	if featDim < 0 || classes < 1 {
		return nil, fmt.Errorf("-feat-dim must be >= 0 and -classes >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.ZipfDegree(rng, n, avg, alpha)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return &store.Source{
		G:          g,
		Feat:       tensor.Randn(rng, 1, n, featDim),
		Labels:     labels,
		NumClasses: classes,
	}, nil
}

func runCheck(path string) error {
	st, err := store.Open(path)
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Printf("%s: N=%d, M=%d, d=%d, %d classes, %.1f MB (fingerprint %#x)\n",
		path, st.N(), st.M(), st.FeatDim(), st.NumClasses(),
		float64(st.Bytes())/(1<<20), st.Fingerprint())
	if err := st.VerifyFingerprint(); err != nil {
		return err
	}
	if err := st.Graph().Validate(); err != nil {
		return err
	}
	fmt.Println("check: content fingerprint and graph structure OK")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seastar-convert:", err)
	os.Exit(1)
}

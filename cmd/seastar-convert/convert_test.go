package main

import (
	"context"
	"path/filepath"
	"testing"

	"seastar/internal/datasets"
	"seastar/internal/store"
	"seastar/internal/train"
)

// TestConvertRoundTrip is the tool-level contract (tier-1, quoted in
// the README): the exact sources the CLI builds — a named dataset and
// a -zipf synthesis — survive convert → reopen → verify, and training
// one epoch over the reopened store is bitwise-identical to training
// the same in-memory source.
func TestConvertRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*store.Source, error)
	}{
		{"dataset", func() (*store.Source, error) { return fromDataset("cora", 0.05, 3) }},
		{"zipf", func() (*store.Source, error) { return fromZipf("900,6,1.1", 24, 8, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := tc.build()
			if err != nil {
				t.Fatalf("build source: %v", err)
			}
			path := filepath.Join(t.TempDir(), "g.sgs")
			if err := store.WriteFile(path, src); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			st, err := store.Open(path)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer st.Close()
			if err := st.VerifyFingerprint(); err != nil {
				t.Fatalf("VerifyFingerprint: %v", err)
			}
			if err := st.Graph().Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if err := runCheck(path); err != nil {
				t.Fatalf("runCheck: %v", err)
			}

			opts := train.MiniBatchOptions{
				Epochs: 1, BatchSize: 128, FanOut: []int{5, 3},
				LR: 0.01, Seed: 7, DegreeSort: true, GPU: "V100",
			}
			mem := &datasets.Dataset{
				Name: "mem", G: src.G, Feat: src.Feat,
				Labels: src.Labels, NumClasses: src.NumClasses, Scale: 1,
			}
			ref, err := train.RunMiniBatch(context.Background(), mem, opts)
			if err != nil {
				t.Fatalf("in-memory train: %v", err)
			}
			opts.GraphStore, opts.StorePrefetch = st, true
			got, err := train.RunMiniBatch(context.Background(), train.DatasetFromStore(st, "store"), opts)
			if err != nil {
				t.Fatalf("store train: %v", err)
			}
			if len(got.Losses) == 0 || len(got.Losses) != len(ref.Losses) {
				t.Fatalf("loss curves differ in length: %d vs %d", len(got.Losses), len(ref.Losses))
			}
			for i := range ref.Losses {
				if got.Losses[i] != ref.Losses[i] {
					t.Fatalf("loss[%d]: store %v != in-memory %v (not bitwise-equal)", i, got.Losses[i], ref.Losses[i])
				}
			}
		})
	}
}

// TestConvertRejectsBadSpecs pins the CLI's input validation.
func TestConvertRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"", "5", "5,3", "a,b,c", "1,3,1.0", "5,0,1.0"} {
		if _, err := fromZipf(spec, 8, 4, 1); err == nil {
			t.Errorf("fromZipf(%q) succeeded, want error", spec)
		}
	}
	if _, err := fromZipf("100,4,1.1", -1, 4, 1); err == nil {
		t.Error("negative feat-dim accepted")
	}
	if _, err := fromZipf("100,4,1.1", 8, 0, 1); err == nil {
		t.Error("zero classes accepted")
	}
	if _, err := fromDataset("no-such-dataset", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// Command seastar-serve runs the concurrent inference server: compiled
// vertex-centric plans behind a plan cache, micro-batched requests over a
// bounded admission queue, and copy-on-write graph snapshot swaps.
//
//	seastar-serve -model gcn -dataset cora -addr :8080
//	curl -s localhost:8080/v1/infer -d '{"nodes":[0,1,2]}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drains gracefully: admission stops, in-flight requests
// finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/obs"
	"seastar/internal/serve"
	"seastar/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "gcn", "gcn|gat|appnp|rgcn")
	dataset := flag.String("dataset", "cora", "dataset to serve at startup")
	gpu := flag.String("gpu", "V100", "simulated GPU profile")
	hidden := flag.Int("hidden", 16, "hidden size")
	alpha := flag.Float64("alpha", 0.1, "APPNP teleport probability")
	k := flag.Int("k", 10, "APPNP propagation steps")
	scale := flag.Float64("scale", 0, "dataset instantiation scale (0 = default)")
	seed := flag.Int64("seed", 1, "dataset + weight seed")
	queue := flag.Int("queue", 256, "admission queue depth")
	batch := flag.Int("batch", 8, "max requests per micro-batch")
	window := flag.Duration("window", time.Millisecond, "micro-batch collection window")
	workers := flag.Int("workers", 4, "concurrent batch workers")
	fanout := flag.String("fanout", "", "comma-separated per-layer fan-out for sampled inference (empty = full graph)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request deadline")
	obsOn := flag.Bool("obs", false, "enable span tracing: per-request span trees on /debug/trace, obs counters on /metrics")
	adaptOn := flag.Bool("adapt", false, "enable measured micro-batch re-planning (trials batch sizes on end-to-end latency, swaps on a sustained >10% win)")
	adaptPlans := flag.String("adapt-plans", "", "persist learned plans to this file for warm restarts (implies -adapt)")
	adaptInterval := flag.Duration("adapt-interval", 0, "measurement-window length per re-planning trial (0 = engine default 250ms)")
	embedCache := flag.Bool("embed-cache", false, "cache full-graph embeddings per snapshot; graph deltas patch them incrementally")
	frontierLimit := flag.Float64("delta-frontier", 0, "dirty-frontier fraction above which a delta falls back to a full recompute (0 = default 0.05)")
	shardIndex := flag.Int("shard-index", -1, "run as shard worker with this index (requires -shard-count)")
	shardCount := flag.Int("shard-count", 0, "total shard count for -shard-index / -coordinator")
	partition := flag.String("partition", "greedy", "vertex-cut partition mode for sharded modes (greedy|range)")
	coordinator := flag.Bool("coordinator", false, "run as shard coordinator over -shard-workers")
	shardWorkers := flag.String("shard-workers", "", "comma-separated worker base URLs for -coordinator")
	flag.Parse()

	if *obsOn {
		obs.Enable()
	}

	s := *scale
	if s == 0 {
		s = datasets.DefaultScale(*dataset)
	}
	ds, err := datasets.Load(*dataset, s, *seed)
	if err != nil {
		fatal(err)
	}
	prof, ok := device.ProfileByName(*gpu)
	if !ok {
		fatal(fmt.Errorf("unknown GPU %q", *gpu))
	}
	// Sharded modes bypass the engine: a worker serves one vertex-cut
	// fragment's step/gather endpoints; a coordinator fronts N workers
	// with the standard /v1/infer contract. Every process re-derives the
	// same deterministic partition from (dataset, mode, count), so no
	// fragment ever crosses the wire.
	if *shardIndex >= 0 || *coordinator {
		spec := serve.ModelSpec{
			Arch: *model, Hidden: *hidden, Classes: ds.NumClasses,
			Alpha: float32(*alpha), K: *k, Seed: *seed,
		}
		var h http.Handler
		switch {
		case *shardIndex >= 0 && *coordinator:
			fatal(fmt.Errorf("-shard-index and -coordinator are exclusive"))
		case *shardIndex >= 0:
			if *shardCount < 1 {
				fatal(fmt.Errorf("-shard-index needs -shard-count"))
			}
			w, err := shard.NewWorker(ds.G, ds.Feat, spec, *shardCount, *shardIndex, *partition, prof)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("seastar-serve: shard worker %d/%d on %s (owned=%d mirrors=%d edges=%d) listening on %s\n",
				*shardIndex, *shardCount, *dataset, w.Frag().Owned, w.Frag().Mirrors(), w.Frag().G.M, *addr)
			h = w.Handler()
		default:
			urls := split(*shardWorkers)
			if len(urls) == 0 {
				fatal(fmt.Errorf("-coordinator needs -shard-workers"))
			}
			c, err := shard.NewCoordinator(shard.CoordinatorConfig{
				Spec: spec, Workers: urls, Mode: *partition,
			}, ds.G)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("seastar-serve: coordinator over %d workers on %s (n=%d m=%d) listening on %s\n",
				len(urls), *dataset, ds.G.N, ds.G.M, *addr)
			h = c.Handler()
		}
		srv := &http.Server{Addr: *addr, Handler: h}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		go func() {
			<-ctx.Done()
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(shCtx)
		}()
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		return
	}

	snap, err := serve.NewSnapshot(ds.G, ds.Feat)
	if err != nil {
		fatal(err)
	}

	cfg := serve.Config{
		Spec: serve.ModelSpec{
			Arch:    *model,
			Hidden:  *hidden,
			Classes: ds.NumClasses,
			Alpha:   float32(*alpha),
			K:       *k,
			Seed:    *seed,
		},
		QueueDepth:     *queue,
		MaxBatch:       *batch,
		BatchWindow:    *window,
		Workers:        *workers,
		DefaultTimeout: *timeout,
		Profile:        prof,
		Adapt:          *adaptOn || *adaptPlans != "",
		AdaptPlanPath:  *adaptPlans,
		AdaptInterval:  *adaptInterval,

		EmbedCache:         *embedCache,
		DeltaFrontierLimit: *frontierLimit,
	}
	if *fanout != "" {
		for _, part := range strings.Split(*fanout, ",") {
			f, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -fanout %q: %v", *fanout, err))
			}
			cfg.FanOut = append(cfg.FanOut, f)
		}
	}

	eng, err := serve.New(cfg, snap)
	if err != nil {
		fatal(err)
	}
	if cfg.Adapt {
		if eng.AdaptWarm() {
			fmt.Println("seastar-serve: adaptive re-planning on (warm start: persisted plan adopted)")
		} else {
			fmt.Println("seastar-serve: adaptive re-planning on (exploring)")
		}
	}

	srv := &http.Server{Addr: *addr, Handler: serve.Handler(eng)}
	done := make(chan struct{})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "seastar-serve: draining...")
		eng.Close() // stop admitting, finish in-flight
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shCtx)
	}()

	fmt.Printf("seastar-serve: %s on %s (n=%d m=%d classes=%d) listening on %s\n",
		*model, *dataset, snap.NumVertices(), snap.NumEdges(), ds.NumClasses, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seastar-serve:", err)
	os.Exit(1)
}

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

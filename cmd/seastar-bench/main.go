// Command seastar-bench regenerates the paper's evaluation tables and
// figures (§7) from the simulated device:
//
//	seastar-bench -exp table2              # dataset table
//	seastar-bench -exp fig10               # per-epoch time, 3 models × 9 datasets
//	seastar-bench -exp fig11               # peak memory
//	seastar-bench -exp table3 -exp table4  # R-GCN time and memory
//	seastar-bench -exp fig12               # kernel microbenchmark
//	seastar-bench -exp all
//
// Large graphs are generated at datasets.DefaultScale and extrapolated;
// use -scale to multiply every default (e.g. -scale 0.25 for a quick
// pass, -scale 1 to attempt full instantiation).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"seastar/internal/bench"
	"seastar/internal/datasets"
)

func main() {
	var exps multiFlag
	flag.Var(&exps, "exp", "experiment to run: table2|fig10|fig11|fig12|table3|table4|correctness|kernels|gemm|pipeline|fused|serve|delta|shard|oocore|all (repeatable; serve, delta, shard and oocore are explicit-only)")
	gpus := flag.String("gpus", "V100,2080Ti,1080Ti", "comma-separated simulated GPUs")
	dss := flag.String("datasets", "", "comma-separated dataset subset (default: the experiment's full set)")
	mdls := flag.String("models", "", "comma-separated model subset for fig10/fig11")
	epochs := flag.Int("epochs", 5, "epochs per measurement")
	warmup := flag.Int("warmup", 2, "warm-up epochs discarded from the average")
	hidden := flag.Int("hidden", 16, "hidden size")
	seed := flag.Int64("seed", 1, "dataset and weight seed")
	scale := flag.Float64("scale", 1, "multiplier on each dataset's default instantiation scale")
	csv := flag.Bool("csv", false, "emit CSV instead of formatted tables")
	cacheDir := flag.String("cachedir", "", "directory for cached graph structures (speeds up repeated runs)")
	kernelsOut := flag.String("kernels-out", "", "write the kernels experiment report as JSON to this path (e.g. BENCH_kernels.json)")
	kernelsVerts := flag.Int("kernels-vertices", 100000, "Zipf graph size for the kernels experiment")
	kernelsModelOnly := flag.Bool("kernels-model-only", false, "kernels experiment: skip measured benchmarks, emit only the deterministic makespan model (fast CI-gate path)")
	gemmOut := flag.String("gemm-out", "", "write the gemm experiment report as JSON to this path (e.g. BENCH_gemm.json)")
	gemmRows := flag.Int("gemm-rows", 1024, "GEMM row count (M) for the gemm experiment")
	gemmModelOnly := flag.Bool("gemm-model-only", false, "gemm experiment: skip measured benchmarks, emit only the deterministic AI model and tile plans (fast CI-gate path)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path (inspect with go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	fusedOut := flag.String("fused-out", "", "write the fused experiment report as JSON to this path (e.g. BENCH_fused.json)")
	fusedVerts := flag.Int("fused-vertices", 100000, "Zipf graph size for the fused experiment")
	pipelineOut := flag.String("pipeline-out", "", "write the pipeline experiment report as JSON to this path (e.g. BENCH_pipeline.json)")
	pipelineVerts := flag.Int("pipeline-vertices", 20000, "Zipf graph size for the pipeline experiment")
	prefetch := flag.Int("prefetch", 4, "pipeline experiment: prefetch depth")
	sampleWorkers := flag.Int("sample-workers", 4, "pipeline experiment: sampling workers")
	adaptVerts := flag.Int("adapt-vertices", 0, "pipeline experiment: also run the adaptive re-planning trial on a Zipf graph of this size (0 = skip)")
	adaptEpochs := flag.Int("adapt-epochs", 36, "pipeline experiment: exploration epoch budget for -adapt-vertices")
	adaptExplore := flag.Int("adapt-explore", 0, "pipeline experiment: trials per candidate per round (0 = tuner default; raise on noisy hosts)")
	serveOut := flag.String("serve-out", "", "write the serve experiment report as JSON to this path (e.g. BENCH_serve.json)")
	serveVerts := flag.Int("serve-vertices", 100000, "Zipf graph size for the serve experiment")
	deltaOut := flag.String("delta-out", "", "write the delta experiment report as JSON to this path (e.g. BENCH_delta.json)")
	deltaVerts := flag.Int("delta-vertices", 100000, "Zipf graph size for the delta experiment")
	shardOut := flag.String("shard-out", "", "write the shard experiment report as JSON to this path (e.g. BENCH_shard.json)")
	oocoreOut := flag.String("oocore-out", "", "write the oocore experiment report as JSON to this path (e.g. BENCH_oocore.json)")
	oocoreVerts := flag.Int("oocore-vertices", 150000, "Zipf graph size for the oocore experiment")
	oocoreFeatDim := flag.Int("oocore-feat-dim", 64, "oocore experiment: stored feature dimensionality")
	oocoreDir := flag.String("oocore-dir", "", "oocore experiment: directory for the store file (default: a temp dir; point at a real disk to measure cold I/O)")
	oocoreCap := flag.Int64("oocore-cap", 0, "oocore experiment: externally applied memory cap in bytes, recorded in the report (set by scripts/oocore_smoke.sh when it created a cgroup)")
	shardVerts := flag.Int("shard-vertices", 100000, "Zipf graph size for the shard experiment")
	shardCount := flag.Int("shards", 4, "shard experiment: worker count")
	shardMode := flag.String("shard-mode", "greedy", "shard experiment: partition mode (greedy|range)")
	flag.Parse()

	if len(exps) == 0 {
		exps = multiFlag{"all"}
	}
	// Profiles flush on normal return only; error paths exit(1) without
	// them, which is fine — profiles matter on successful runs.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote CPU profile %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
			fmt.Printf("wrote heap profile %s\n", *memprofile)
		}()
	}
	cfg := bench.DefaultConfig()
	cfg.Epochs, cfg.Warmup, cfg.Hidden, cfg.Seed = *epochs, *warmup, *hidden, *seed
	cfg.GPUs = split(*gpus)
	cfg.CacheDir = *cacheDir
	if *dss != "" {
		cfg.Datasets = split(*dss)
	}
	if *mdls != "" {
		cfg.Models = split(*mdls)
	}
	if *scale != 1 {
		mult := *scale
		cfg.ScaleOverride = func(name string) float64 {
			s := datasets.DefaultScale(name) * mult
			if s > 1 {
				s = 1
			}
			return s
		}
	}

	run := map[string]bool{}
	for _, e := range exps {
		run[e] = true
	}
	all := run["all"]

	if all || run["table2"] {
		fmt.Println("=== Table 2: datasets ===")
		bench.WriteTable2(os.Stdout)
		if rs, err := bench.TypeRatios(cfg); err == nil {
			fmt.Println("\n=== §6.3.5 edge-type storage analysis ===")
			bench.WriteTypeRatios(os.Stdout, rs)
		}
	}
	emit := func(title string, ms []bench.Measurement, memory bool) {
		if *csv {
			bench.WriteCSV(os.Stdout, ms)
			return
		}
		fmt.Println("\n" + title)
		bench.FormatMeasurements(os.Stdout, ms, memory)
	}
	if all || run["fig10"] {
		emit("=== Figure 10: per-epoch training time ===", bench.Fig10(cfg), false)
	}
	if all || run["fig11"] {
		emit("=== Figure 11: peak memory (11 GB device) ===", bench.Fig11(cfg), true)
	}
	if all || run["table3"] {
		emit("=== Table 3: R-GCN per-epoch time ===", bench.Table3(cfg), false)
	}
	if all || run["table4"] {
		emit("=== Table 4: R-GCN peak memory ===", bench.Table4(cfg), true)
	}
	if all || run["correctness"] {
		rows, err := bench.Correctness(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "correctness:", err)
			os.Exit(1)
		}
		fmt.Println("\n=== Correctness: baseline deviation from Seastar ===")
		bench.WriteCorrectness(os.Stdout, rows)
	}
	if all || run["kernels"] {
		kcfg := bench.DefaultKernelsConfig()
		kcfg.Seed = *seed
		kcfg.Vertices = *kernelsVerts
		kcfg.ModelOnly = *kernelsModelOnly
		rep, err := bench.KernelsBench(kcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kernels:", err)
			os.Exit(1)
		}
		fmt.Println("\n=== CPU kernel engine: edge-balanced stealing vs uniform rows ===")
		bench.WriteKernelsText(os.Stdout, rep)
		if *kernelsOut != "" {
			f, err := os.Create(*kernelsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kernels:", err)
				os.Exit(1)
			}
			if err := bench.WriteKernelsJSON(f, rep); err != nil {
				fmt.Fprintln(os.Stderr, "kernels:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *kernelsOut)
		}
	}
	if all || run["gemm"] {
		gcfg := bench.DefaultGemmConfig()
		gcfg.Seed = *seed
		gcfg.Rows = *gemmRows
		gcfg.ModelOnly = *gemmModelOnly
		rep, err := bench.GemmBench(gcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gemm:", err)
			os.Exit(1)
		}
		fmt.Println("\n=== Cache-blocked GEMM + feature-tiled aggregation ===")
		bench.WriteGemmText(os.Stdout, rep)
		if *gemmOut != "" {
			f, err := os.Create(*gemmOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gemm:", err)
				os.Exit(1)
			}
			if err := bench.WriteGemmJSON(f, rep); err != nil {
				fmt.Fprintln(os.Stderr, "gemm:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *gemmOut)
		}
	}
	if all || run["fused"] {
		fcfg := bench.DefaultFusedConfig()
		fcfg.Seed = *seed
		fcfg.Vertices = *fusedVerts
		rep, err := bench.FusedBench(fcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fused:", err)
			os.Exit(1)
		}
		fmt.Println("\n=== Closure compiler: specialized edge loops vs interpreter ===")
		bench.WriteFusedText(os.Stdout, rep)
		if *fusedOut != "" {
			f, err := os.Create(*fusedOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fused:", err)
				os.Exit(1)
			}
			if err := bench.WriteFusedJSON(f, rep); err != nil {
				fmt.Fprintln(os.Stderr, "fused:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *fusedOut)
		}
	}
	if all || run["pipeline"] {
		pcfg := bench.DefaultPipelineBenchConfig()
		pcfg.Seed = *seed
		pcfg.Vertices = *pipelineVerts
		pcfg.Prefetch, pcfg.SampleWorkers = *prefetch, *sampleWorkers
		pcfg.AdaptVertices, pcfg.AdaptEpochs = *adaptVerts, *adaptEpochs
		pcfg.AdaptConfig.Explore = *adaptExplore
		rep, err := bench.PipelineBench(pcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pipeline:", err)
			os.Exit(1)
		}
		fmt.Println("\n=== Mini-batch pipeline: overlapped sampling vs serial ===")
		bench.WritePipelineText(os.Stdout, rep)
		if *pipelineOut != "" {
			f, err := os.Create(*pipelineOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pipeline:", err)
				os.Exit(1)
			}
			if err := bench.WritePipelineJSON(f, rep); err != nil {
				fmt.Fprintln(os.Stderr, "pipeline:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *pipelineOut)
		}
	}
	// The serve experiment is explicit-only (not part of -exp all): it
	// saturates the host with closed-loop load until the engine's tuner
	// settles, which takes tens of seconds at the acceptance size.
	if run["serve"] {
		scfg := bench.DefaultServeBenchConfig()
		scfg.Seed = *seed
		scfg.Vertices = *serveVerts
		rep, err := bench.ServeBench(scfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		fmt.Println("\n=== Serving: adaptive micro-batch re-planning under load ===")
		bench.WriteServeText(os.Stdout, rep)
		if *serveOut != "" {
			f, err := os.Create(*serveOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				os.Exit(1)
			}
			if err := bench.WriteServeJSON(f, rep); err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *serveOut)
		}
	}
	// The delta experiment is explicit-only for the same reason: each of
	// the 30 deltas pays a full rebuild-from-scratch baseline on a 100k
	// graph to prove bitwise equivalence.
	if run["delta"] {
		dcfg := bench.DefaultDeltaBenchConfig()
		dcfg.Seed = *seed
		dcfg.Vertices = *deltaVerts
		rep, err := bench.DeltaBench(dcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta:", err)
			os.Exit(1)
		}
		fmt.Println("\n=== Graph deltas: incremental k-hop recompute vs full refresh ===")
		bench.WriteDeltaText(os.Stdout, rep)
		if *deltaOut != "" {
			f, err := os.Create(*deltaOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "delta:", err)
				os.Exit(1)
			}
			if err := bench.WriteDeltaJSON(f, rep); err != nil {
				fmt.Fprintln(os.Stderr, "delta:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *deltaOut)
		}
	}
	// The shard experiment is explicit-only too: it partitions the 100k
	// acceptance graph five times (4 workers + coordinator), proves the
	// bitwise gate over every vertex through loopback HTTP, and races
	// interior-vertex latency against a single-shard deployment.
	if run["shard"] {
		hcfg := bench.DefaultShardBenchConfig()
		hcfg.Seed = *seed
		hcfg.Vertices = *shardVerts
		hcfg.Shards = *shardCount
		hcfg.Mode = *shardMode
		rep, err := bench.ShardBench(hcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shard:", err)
			os.Exit(1)
		}
		fmt.Println("\n=== Sharded serving: vertex-cut workers behind a coordinator ===")
		bench.WriteShardText(os.Stdout, rep)
		if *shardOut != "" {
			f, err := os.Create(*shardOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "shard:", err)
				os.Exit(1)
			}
			if err := bench.WriteShardJSON(f, rep); err != nil {
				fmt.Fprintln(os.Stderr, "shard:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *shardOut)
		}
	}
	// The oocore experiment is explicit-only as well: it converts a
	// 150k-vertex graph to the on-disk store, trains over the mmap twice
	// (in-memory baseline + store-backed with prefetch) and prices the
	// capped-cache regime with the I/O overlap model.
	if run["oocore"] {
		ocfg := bench.DefaultOOCoreBenchConfig()
		ocfg.Seed = *seed
		ocfg.Vertices = *oocoreVerts
		ocfg.FeatDim = *oocoreFeatDim
		ocfg.Dir = *oocoreDir
		ocfg.MemCapBytes = *oocoreCap
		rep, err := bench.RunOOCoreBench(context.Background(), ocfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oocore:", err)
			os.Exit(1)
		}
		fmt.Println("\n=== Out-of-core store: mmap-backed training ===")
		bench.WriteOOCoreText(os.Stdout, rep)
		if *oocoreOut != "" {
			f, err := os.Create(*oocoreOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "oocore:", err)
				os.Exit(1)
			}
			if err := bench.WriteOOCoreJSON(f, rep); err != nil {
				fmt.Fprintln(os.Stderr, "oocore:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *oocoreOut)
		}
	}
	if all || run["fig12"] {
		pts, err := bench.Fig12(cfg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig12:", err)
			os.Exit(1)
		}
		if *csv {
			bench.WriteFig12CSV(os.Stdout, pts)
		} else {
			fmt.Println("\n=== Figure 12: neighbour-access microbenchmark ===")
			bench.WriteFig12(os.Stdout, pts)
		}
	}
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Command seastar-train trains one GNN on one dataset and reports loss,
// accuracy, simulated per-epoch time and peak device memory:
//
//	seastar-train -model gcn -dataset cora -system seastar -epochs 20
//	seastar-train -model rgcn -dataset aifb -system dgl-bmm -gpu 1080Ti
//
// With -minibatch it switches to pipelined neighbour-sampled training
// (internal/pipeline): sampling for upcoming batches overlaps compute
// for the current one, with bitwise-reproducible results for a fixed
// -seed regardless of -prefetch/-sample-workers:
//
//	seastar-train -minibatch -dataset cora -batch-size 256 -prefetch 4 \
//	    -epochs 5 -checkpoint ck.gob
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"seastar/internal/bench"
	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/models"
	"seastar/internal/nn"
	"seastar/internal/pipeline"
	"seastar/internal/store"
	"seastar/internal/train"
)

func main() {
	model := flag.String("model", "gcn", "gcn|gat|appnp|rgcn")
	dataset := flag.String("dataset", "cora", "dataset name (see -list)")
	system := flag.String("system", "seastar", "seastar|dgl|pyg|dgl-bmm|pyg-bmm")
	gpu := flag.String("gpu", "V100", "simulated GPU")
	hidden := flag.Int("hidden", 16, "hidden size")
	epochs := flag.Int("epochs", 10, "training epochs")
	lr := flag.Float64("lr", 0.01, "Adam learning rate")
	scale := flag.Float64("scale", 0, "dataset instantiation scale (0 = default)")
	seed := flag.Int64("seed", 1, "seed")
	degreeSort := flag.Bool("degree-sort", true, "degree-sort the graph before training (§6.3.3); disable for ablations")
	list := flag.Bool("list", false, "list datasets and exit")
	traceFile := flag.String("trace", "", "write a Chrome trace of simulated kernels to this file")
	minibatch := flag.Bool("minibatch", false, "train with pipelined neighbour-sampled mini-batches instead of full graph")
	batchSize := flag.Int("batch-size", 256, "minibatch: seed vertices per batch")
	prefetch := flag.Int("prefetch", 4, "minibatch: pipeline depth (0 = serial)")
	sampleWorkers := flag.Int("sample-workers", 2, "minibatch: parallel sampling workers")
	fanout := flag.String("fanout", "8,4", "minibatch: comma-separated per-layer neighbour fan-out")
	checkpoint := flag.String("checkpoint", "", "minibatch: checkpoint file (resumes if present, saved every epoch)")
	metricsOut := flag.String("metrics-out", "", "minibatch: write Prometheus-style pipeline metrics to this file at exit")
	graphStore := flag.String("graph-store", "", "train from an mmap-backed on-disk store written by seastar-convert (implies -minibatch; -dataset/-scale are ignored)")
	storePrefetch := flag.Bool("store-prefetch", true, "graph-store: prefetch upcoming batches' CSR rows and feature pages")
	storePrefetchWorkers := flag.Int("store-prefetch-workers", 1, "graph-store: prefetcher goroutines")
	storePrefetchBudget := flag.Int("store-prefetch-budget", 4, "graph-store: bounded in-flight prefetch requests (full budget drops, never blocks)")
	flag.Parse()

	if *list {
		bench.WriteTable2(os.Stdout)
		return
	}
	if *graphStore != "" {
		st, err := store.Open(*graphStore)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		ds := train.DatasetFromStore(st, *graphStore)
		fmt.Printf("graph store %s: N=%d, M=%d, d=%d, %d classes, %.1f MB on disk (fingerprint %#x)\n",
			*graphStore, st.N(), st.M(), st.FeatDim(), st.NumClasses(),
			float64(st.Bytes())/(1<<20), st.Fingerprint())
		runMiniBatch(ds, miniFlags{
			epochs: *epochs, batchSize: *batchSize, prefetch: *prefetch,
			sampleWorkers: *sampleWorkers, fanout: *fanout,
			checkpoint: *checkpoint, metricsOut: *metricsOut,
			lr: float32(*lr), seed: *seed, degreeSort: *degreeSort, gpu: *gpu,
			store: st, storePrefetch: *storePrefetch,
			storePrefetchWorkers: *storePrefetchWorkers,
			storePrefetchBudget:  *storePrefetchBudget,
		})
		return
	}
	s := *scale
	if s == 0 {
		s = datasets.DefaultScale(*dataset)
	}
	ds, err := datasets.Load(*dataset, s, *seed)
	if err != nil {
		fatal(err)
	}
	if *minibatch {
		runMiniBatch(ds, miniFlags{
			epochs: *epochs, batchSize: *batchSize, prefetch: *prefetch,
			sampleWorkers: *sampleWorkers, fanout: *fanout,
			checkpoint: *checkpoint, metricsOut: *metricsOut,
			lr: float32(*lr), seed: *seed, degreeSort: *degreeSort, gpu: *gpu,
		})
		return
	}
	prof, ok := device.ProfileByName(*gpu)
	if !ok {
		fatal(fmt.Errorf("unknown GPU %q (have %v)", *gpu, []string{"V100", "2080Ti", "1080Ti"}))
	}
	dev := device.NewScaled(prof, s)
	env, err := models.NewEnvWith(dev, ds, *seed, models.EnvOptions{DegreeSort: *degreeSort})
	if err != nil {
		fatal(err)
	}

	var m models.Model
	sys := models.System(*system)
	switch *model {
	case "gcn":
		m, err = models.NewGCN(env, sys, *hidden)
	case "gat":
		m, err = models.NewGAT(env, sys, *hidden)
	case "appnp":
		m, err = models.NewAPPNP(env, sys, *hidden, 10, 0.1)
	case "rgcn":
		m, err = models.NewRGCN(env, sys, *hidden)
	default:
		err = fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("training %s on %s (N=%d, M=%d, scale=%.4g) with %s on simulated %s\n",
		m.Name(), ds.Name, ds.G.N, ds.G.M, ds.Scale, sys, prof.Name)

	if *traceFile != "" {
		dev.EnableTrace()
	}

	opt := nn.NewAdam(m.Params(), float32(*lr))
	trainErr := nn.CatchOOM(func() {
		for epoch := 1; epoch <= *epochs; epoch++ {
			start := dev.ElapsedNs()
			logits := m.Forward(true)
			loss := env.E.CrossEntropyMasked(logits, ds.Labels, ds.TrainMask)
			env.E.Backward(loss)
			opt.Step()
			trainAcc := nn.Accuracy(logits.Value, ds.Labels, ds.TrainMask)
			testAcc := nn.Accuracy(logits.Value, ds.Labels, ds.TestMask)
			env.E.EndIteration()
			fmt.Printf("epoch %3d  loss %.4f  train-acc %.3f  test-acc %.3f  sim %.2f ms\n",
				epoch, loss.Value.At1(0), trainAcc, testAcc, (dev.ElapsedNs()-start)/1e6)
		}
	})
	if trainErr != nil {
		fmt.Printf("training aborted: %v\n", trainErr)
		os.Exit(2)
	}
	fmt.Printf("peak device memory: %.1f MB (extrapolated to full scale)\n",
		float64(dev.PeakBytes())/(1<<20))

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := dev.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Println("top kernels by simulated time:")
		for i, s := range dev.SummarizeTrace() {
			if i == 8 {
				break
			}
			fmt.Printf("  %-28s ×%-5d %.3f ms\n", s.Name, s.Count, s.TotalNs/1e6)
		}
		fmt.Printf("chrome trace written to %s\n", *traceFile)
	}
}

type miniFlags struct {
	epochs, batchSize, prefetch, sampleWorkers int
	fanout, checkpoint, metricsOut, gpu        string
	lr                                         float32
	seed                                       int64
	degreeSort                                 bool

	store                                     *store.Store
	storePrefetch                             bool
	storePrefetchWorkers, storePrefetchBudget int
}

// runMiniBatch drives train.RunMiniBatch with ^C-aware cancellation:
// an interrupt cancels the pipeline, which drains all stages, and the
// latest completed epoch's checkpoint (if -checkpoint) remains usable.
func runMiniBatch(ds *datasets.Dataset, mf miniFlags) {
	fan, err := parseFanOut(mf.fanout)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	metrics := pipeline.NewMetrics()
	opts := train.MiniBatchOptions{
		Epochs: mf.epochs, BatchSize: mf.batchSize, FanOut: fan,
		Prefetch: mf.prefetch, SampleWorkers: mf.sampleWorkers,
		LR: mf.lr, Seed: mf.seed, DegreeSort: mf.degreeSort, GPU: mf.gpu,
		CheckpointPath: mf.checkpoint, Metrics: metrics,
		GraphStore: mf.store, StorePrefetch: mf.storePrefetch,
		StorePrefetchWorkers: mf.storePrefetchWorkers,
		StorePrefetchBudget:  mf.storePrefetchBudget,
		Progress: func(st train.EpochStats) {
			fmt.Printf("epoch %3d  batches %3d  loss %.4f  seed-acc %.3f  wall %.1f ms\n",
				st.Epoch+1, st.Batches, st.AvgLoss, st.SeedAcc, float64(st.WallNs)/1e6)
		},
	}
	fmt.Printf("mini-batch training on %s (N=%d, M=%d): batch %d, fan-out %v, prefetch %d, %d sample workers\n",
		ds.Name, ds.G.N, ds.G.M, mf.batchSize, fan, mf.prefetch, mf.sampleWorkers)

	res, err := train.RunMiniBatch(ctx, ds, opts)
	if mf.metricsOut != "" {
		if f, ferr := os.Create(mf.metricsOut); ferr == nil {
			metrics.Write(f)
			f.Close()
		} else {
			fmt.Fprintln(os.Stderr, "seastar-train:", ferr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if res.StartEpoch > 0 {
		fmt.Printf("(resumed from checkpoint at epoch %d)\n", res.StartEpoch)
	}
	fmt.Printf("final seed-vertex accuracy %.3f, peak device memory %.1f MB\n",
		res.SeedAcc, float64(res.PeakBytes)/(1<<20))
	if s := res.StoreStats; s != nil {
		fmt.Printf("store prefetch: %d requests (%d dropped), %d rows, %d page touches; %d major faults\n",
			s.Batches, s.Dropped, s.Rows, s.Pages, res.MajorFaults)
	}
}

func parseFanOut(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -fanout element %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fanout is empty")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seastar-train:", err)
	os.Exit(1)
}

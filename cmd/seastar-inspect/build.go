package main

import (
	"fmt"

	"seastar/internal/gir"
)

// modelParams are the shape knobs shared by every built-in model.
type modelParams struct {
	in        int
	hidden    int
	relations int
}

// buildModel traces one of the built-in vertex-centric programs into a
// forward GIR. These mirror the paper's running examples: GCN (§2), GAT
// with edge softmax (§5.2/Figure 6), one APPNP propagation step, and
// R-GCN with per-relation weights + hierarchical aggregation.
func buildModel(model string, p modelParams) (*gir.DAG, error) {
	b := gir.NewBuilder()
	var udf gir.UDF
	switch model {
	case "gcn":
		b.VFeature("h", p.in)
		b.VFeature("norm", 1)
		W := b.Param("W", p.in, p.hidden)
		udf = func(v *gir.Vertex) *gir.Value {
			return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
		}
	case "gat":
		b.VFeature("eu", 1)
		b.VFeature("ev", 1)
		b.VFeature("h", p.hidden)
		udf = func(v *gir.Vertex) *gir.Value {
			e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
			a := e.Div(e.AggSum())
			return a.Mul(v.Nbr("h")).AggSum()
		}
	case "appnp":
		b.VFeature("h", p.hidden)
		b.VFeature("h0", p.hidden)
		b.VFeature("sn", 1)
		b.VFeature("dn", 1)
		udf = func(v *gir.Vertex) *gir.Value {
			agg := v.Nbr("h").Mul(v.Nbr("sn")).AggSum()
			return agg.Mul(v.Self("dn")).MulScalar(0.9).Add(v.Self("h0").MulScalar(0.1))
		}
	case "rgcn":
		b.VFeature("h", p.in)
		b.EFeature("norm", 1)
		Ws := b.Param("W", p.relations, p.in, p.hidden)
		udf = func(v *gir.Vertex) *gir.Value {
			return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(gir.AggSum, gir.AggSum)
		}
	default:
		return nil, fmt.Errorf("unknown model %q (want gcn|gat|appnp|rgcn)", model)
	}
	return b.Build(udf)
}

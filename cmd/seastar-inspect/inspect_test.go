package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seastar/internal/exec"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenModels are the models covered by the EXPLAIN / DOT golden files.
// appnp is left out deliberately: it exercises the same ops as gcn.
var goldenModels = []string{"gcn", "gat", "rgcn"}

func compileModel(t *testing.T, model string) *exec.CompiledUDF {
	t.Helper()
	dag, err := buildModel(model, modelParams{in: 16, hidden: 16, relations: 4})
	if err != nil {
		t.Fatalf("buildModel(%s): %v", model, err)
	}
	c, err := exec.Compile(dag)
	if err != nil {
		t.Fatalf("Compile(%s): %v", model, err)
	}
	return c
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test -run %s -update): %v", path, t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestExplainGolden pins the EXPLAIN text output — GIR listings plus the
// fused execution-unit plans — for each built-in model. A diff here means
// the compiler pipeline (trace, autodiff, fusion, materialization) changed
// what it produces, which should be a deliberate decision.
func TestExplainGolden(t *testing.T) {
	for _, model := range goldenModels {
		t.Run(model, func(t *testing.T) {
			c := compileModel(t, model)
			var buf bytes.Buffer
			writeExplain(&buf, model, c)
			checkGolden(t, model+"_explain.txt", buf.Bytes())
		})
	}
}

// TestDOTGolden pins the Graphviz rendering of both passes for each model.
func TestDOTGolden(t *testing.T) {
	for _, model := range goldenModels {
		for _, pass := range []string{"fwd", "bwd"} {
			t.Run(model+"/"+pass, func(t *testing.T) {
				c := compileModel(t, model)
				var buf bytes.Buffer
				if err := writeDOT(&buf, model, pass, c); err != nil {
					t.Fatalf("writeDOT: %v", err)
				}
				checkGolden(t, fmt.Sprintf("%s_%s.dot", model, pass), buf.Bytes())
			})
		}
	}
}

// TestDOTWellFormed sanity-checks structural invariants of the DOT output
// that a golden diff would not explain well: balanced braces, one cluster
// per execution unit, and every node referenced by an edge also declared.
func TestDOTWellFormed(t *testing.T) {
	c := compileModel(t, "gat")
	var buf bytes.Buffer
	if err := writeDOT(&buf, "gat", "fwd", c); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "{") != strings.Count(s, "}") {
		t.Errorf("unbalanced braces in DOT output")
	}
	if got, want := strings.Count(s, "subgraph cluster_u"), len(c.FwdPlan.Units); got != want {
		t.Errorf("got %d clusters, want %d (one per execution unit)", got, want)
	}
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if !strings.Contains(line, "->") {
			continue
		}
		var from, to int
		if _, err := fmt.Sscanf(line, "n%d -> n%d", &from, &to); err != nil {
			t.Errorf("unparseable edge line %q: %v", line, err)
			continue
		}
		for _, id := range []int{from, to} {
			if !strings.Contains(s, fmt.Sprintf("n%d [", id)) {
				t.Errorf("edge references undeclared node n%d", id)
			}
		}
	}
}

// TestDOTBadPass covers the error paths.
func TestDOTBadPass(t *testing.T) {
	c := compileModel(t, "gcn")
	if err := writeDOT(&bytes.Buffer{}, "gcn", "sideways", c); err == nil {
		t.Error("expected error for unknown pass")
	}
}

func TestBuildModelUnknown(t *testing.T) {
	if _, err := buildModel("transformer", modelParams{}); err == nil {
		t.Error("expected error for unknown model")
	}
}

// TestAnalyzeAttribution gates the PR's acceptance criterion: EXPLAIN
// ANALYZE on the GAT model must attribute at least 95% of the measured
// wall time to named execution units, and the per-unit sum must agree
// with the end-to-end timing within 10%. The graph is smaller than the
// CLI default to keep the test quick, but large enough that kernel time
// dominates fixed overhead the way it does at the default scale.
func TestAnalyzeAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full engine for several iterations")
	}
	rep, err := runAnalyze(analyzeOptions{
		Model:  "gat",
		Params: modelParams{in: 16, hidden: 16, relations: 4},
		N:      20000, Deg: 8, Iters: 3, Seed: 1, GPU: "V100",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage < 0.95 {
		t.Errorf("attribution coverage %.1f%% < 95%%", rep.Coverage*100)
	}
	// "Sums within 10% of end-to-end timing": UnitsNs ∈ [0.9, 1.1]·WallNs.
	lo, hi := float64(rep.WallNs)*0.9, float64(rep.WallNs)*1.1
	if float64(rep.UnitsNs) < lo || float64(rep.UnitsNs) > hi {
		t.Errorf("unit sum %d ns outside ±10%% of wall %d ns", rep.UnitsNs, rep.WallNs)
	}
	if len(rep.Units) == 0 {
		t.Fatal("no units attributed")
	}
	seenBwd := false
	for _, u := range rep.Units {
		if u.Count != int64(rep.Iters) {
			t.Errorf("%s ran %d times, want %d", u.Label, u.Count, rep.Iters)
		}
		if u.Pass == "bwd" {
			seenBwd = true
		}
	}
	if !seenBwd {
		t.Error("no backward units attributed — backward pass did not run")
	}
	if tot, ok := rep.CompileNs["total"]; !ok || tot <= 0 {
		t.Error("missing compile-phase attribution")
	}
}

// TestAnalyzeRGCNCounters checks that kernel-layer counters (rows, edges)
// flow through attribution and match the graph that was actually built.
func TestAnalyzeRGCNCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full engine")
	}
	rep, err := runAnalyze(analyzeOptions{
		Model:  "rgcn",
		Params: modelParams{in: 8, hidden: 8, relations: 3},
		N:      2000, Deg: 4, Iters: 2, Seed: 7, GPU: "V100",
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range rep.Units {
		if u.Counters == nil {
			continue
		}
		found = true
		if rows := u.Counters["rows"]; rows != int64(rep.N) {
			t.Errorf("%s rows=%d, want %d", u.Label, rows, rep.N)
		}
		if edges := u.Counters["edges"]; edges != int64(rep.M) {
			t.Errorf("%s edges=%d, want %d", u.Label, edges, rep.M)
		}
	}
	if !found {
		t.Error("no unit carried kernel counters")
	}
}

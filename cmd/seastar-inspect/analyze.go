package main

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"seastar/internal/adapt"
	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/nn"
	"seastar/internal/obs"
	"seastar/internal/sched"
	"seastar/internal/tensor"
)

// analyzeOptions parameterize one EXPLAIN ANALYZE run.
type analyzeOptions struct {
	Model   string
	Params  modelParams
	Dataset string // "" → synthetic Zipf graph
	N       int    // synthetic vertex count
	Deg     int    // synthetic average degree
	Iters   int    // measured forward+backward iterations
	Seed    int64
	GPU     string
	// PlanPath, when set, loads the adaptive plan store and applies the
	// learned kernel tunings for this (model, graph, host) key before
	// measuring; the report then carries the plan for the
	// "plan: learned(gen=K)" annotation.
	PlanPath string
}

// UnitProfile is the measured attribution of one execution unit.
type UnitProfile struct {
	Pass     string           `json:"pass"` // "fwd" or "bwd"
	Label    string           `json:"label"`
	Kind     string           `json:"kind"`
	Count    int64            `json:"count"`
	TotalNs  int64            `json:"total_ns"`
	NsPerIt  int64            `json:"ns_per_iter"`
	Fraction float64          `json:"fraction"` // of measured wall time
	Allocs   int64            `json:"allocs_per_iter"`
	Counters map[string]int64 `json:"counters,omitempty"` // rows/edges/tile_width from the kernel layer
}

// Report is the full EXPLAIN ANALYZE result, also emitted as -json.
type Report struct {
	Model      string           `json:"model"`
	Dataset    string           `json:"dataset"`
	N          int              `json:"n"`
	M          int              `json:"m"`
	Iters      int              `json:"iters"`
	WallNs     int64            `json:"wall_ns"`
	UnitsNs    int64            `json:"units_ns"`
	Coverage   float64          `json:"coverage"` // UnitsNs / WallNs
	CompileNs  map[string]int64 `json:"compile_ns"`
	Units      []UnitProfile    `json:"units"`
	PoolHits   int64            `json:"pool_hits"`
	PoolMisses int64            `json:"pool_misses"`
	// PlanKey is the adaptive-plan slot this run would use; Plan is the
	// learned plan that was applied, nil when the run used the static
	// plan. PlanDiag records a plan file that could not be read (the run
	// falls back to static).
	PlanKey  adapt.Key   `json:"plan_key"`
	Plan     *adapt.Plan `json:"plan,omitempty"`
	PlanDiag string      `json:"plan_diag,omitempty"`
}

// runAnalyze compiles the model, executes Iters training iterations
// (forward + backward) under span tracing, and attributes the measured
// wall time to execution units. A second single-iteration pass with
// allocation tracking fills in per-unit allocs without perturbing the
// timing run.
func runAnalyze(opts analyzeOptions) (*Report, error) {
	if opts.Iters <= 0 {
		opts.Iters = 5
	}
	if opts.N <= 0 {
		opts.N = 30000
	}
	if opts.Deg <= 0 {
		opts.Deg = 8
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// The graph: synthetic degree-sorted Zipf, or a named dataset's
	// topology (features are synthesized either way — the built-in
	// models' feature keys are not dataset columns).
	var g *graph.Graph
	dsName := "synthetic-zipf"
	if opts.Dataset != "" {
		ds, err := datasets.Load(opts.Dataset, datasets.DefaultScale(opts.Dataset), opts.Seed)
		if err != nil {
			return nil, err
		}
		g = ds.G.SortByDegree()
		dsName = opts.Dataset
	} else {
		g = graph.ZipfDegree(rng, opts.N, opts.Deg, 2.0).SortByDegree()
	}
	if opts.Model == "rgcn" && g.EdgeTypes == nil {
		graph.RandomEdgeTypes(rng, g, opts.Params.relations)
	}

	prof, ok := device.ProfileByName(opts.GPU)
	if !ok {
		return nil, fmt.Errorf("unknown GPU %q", opts.GPU)
	}

	wasEnabled := obs.Enabled()
	obs.Enable()
	defer func() {
		if !wasEnabled {
			obs.Disable()
		}
		obs.DisableAllocTracking()
	}()
	obs.Reset()

	dag, err := buildModel(opts.Model, opts.Params)
	if err != nil {
		return nil, err
	}
	c, err := exec.Compile(dag)
	if err != nil {
		return nil, err
	}
	compileNs := map[string]int64{}
	for _, e := range obs.Snapshot() {
		if e.Cat == "compile" {
			compileNs[e.Name] = e.TotalNs
		}
	}

	// Adaptive plan: apply the learned kernel tunings for this slot
	// before measuring, so the profile reflects the plan the annotation
	// names. A missing or corrupt plan file falls back to static.
	planKey := adapt.Key{
		Model:   opts.Model,
		GraphFP: adapt.GraphFP(g.N, g.M, g.Srcs, g.Dsts),
		InDim:   opts.Params.in,
		Procs:   sched.MaxProcs,
		Host:    adapt.HostID(),
	}
	var plan *adapt.Plan
	planDiag := ""
	if opts.PlanPath != "" {
		if p, ok, diag := adapt.NewStore(opts.PlanPath).Load(planKey); ok {
			tn := map[string]kernels.Tuning{}
			for label, u := range p.Tuning.Units {
				tn[label] = kernels.Tuning{
					TileWidth: u.TileWidth, Serial: u.Serial,
					ChunksPerWorker: u.ChunksPerWorker,
				}
			}
			c.ApplyTuning(tn)
			plan = &p
		} else if diag != nil {
			planDiag = diag.Error()
		}
	}

	eng := nn.NewEngine(device.New(prof))
	rt := exec.NewRuntime(eng, g)

	// Every input is a trainable Param so the backward pass runs every
	// gradient unit (requires-grad pruning would otherwise skip
	// feature gradients — a profile should see the whole program).
	vfeat := map[string]*nn.Variable{}
	efeat := map[string]*nn.Variable{}
	params := map[string]*nn.Variable{}
	for _, spec := range c.Inputs {
		v := eng.Param(inputTensor(rng, g, c.Fwd, spec), spec.Key)
		switch spec.Kind {
		case exec.InVFeat:
			vfeat[spec.Key] = v
		case exec.InEFeat:
			efeat[spec.Key] = v
		default:
			params[spec.Key] = v
		}
	}
	step := func() error {
		out, err := c.Apply(rt, vfeat, efeat, params)
		if err != nil {
			return err
		}
		eng.Backward(eng.SumAll(out))
		eng.EndIteration()
		return nil
	}

	// Warm-up: first iteration pays pool misses and lazy init.
	if err := step(); err != nil {
		return nil, err
	}

	// Phase A: clean timing run.
	obs.Reset()
	wallStart := time.Now()
	for i := 0; i < opts.Iters; i++ {
		if err := step(); err != nil {
			return nil, err
		}
	}
	wallNs := time.Since(wallStart).Nanoseconds()
	timing := snapshotByName()

	// Phase B: one iteration with allocation tracking for per-unit
	// allocs (runtime/metrics reads at span edges would skew Phase A).
	obs.Reset()
	obs.EnableAllocTracking()
	if err := step(); err != nil {
		return nil, err
	}
	obs.DisableAllocTracking()
	allocs := snapshotByName()

	rep := &Report{
		Model: opts.Model, Dataset: dsName, N: g.N, M: g.M,
		Iters: opts.Iters, WallNs: wallNs, CompileNs: compileNs,
		PlanKey: planKey, Plan: plan, PlanDiag: planDiag,
	}
	rep.PoolHits, rep.PoolMisses = rt.PoolStats()

	fwdLabels, bwdLabels := c.UnitLabels()
	addUnits := func(pass string, labels []string, units []fmtUnit) {
		for i, label := range labels {
			e, ok := timing["exec\x00"+label]
			if !ok {
				continue // pruned unit: never ran
			}
			up := UnitProfile{
				Pass: pass, Label: label, Kind: units[i].kind,
				Count: e.Count, TotalNs: e.TotalNs,
				NsPerIt:  e.TotalNs / int64(opts.Iters),
				Fraction: float64(e.TotalNs) / float64(wallNs),
			}
			if a, ok := allocs["exec\x00"+label]; ok {
				up.Allocs = a.Counters["allocs"]
			}
			if k, ok := timing["kern\x00"+label]; ok && len(k.Counters) > 0 {
				up.Counters = map[string]int64{}
				for name, v := range k.Counters {
					if name == "rows" || name == "edges" {
						v /= e.Count // per launch
					}
					up.Counters[name] = v
				}
			}
			rep.UnitsNs += e.TotalNs
			rep.Units = append(rep.Units, up)
		}
	}
	addUnits("fwd", fwdLabels, unitKinds(c, "fwd"))
	if c.BwdPlan != nil {
		addUnits("bwd", bwdLabels, unitKinds(c, "bwd"))
	}
	if wallNs > 0 {
		rep.Coverage = float64(rep.UnitsNs) / float64(wallNs)
	}
	return rep, nil
}

// fmtUnit carries per-unit static facts parallel to the label slices.
type fmtUnit struct{ kind string }

func unitKinds(c *exec.CompiledUDF, pass string) []fmtUnit {
	plan := c.FwdPlan
	if pass == "bwd" {
		plan = c.BwdPlan
	}
	out := make([]fmtUnit, len(plan.Units))
	for i, u := range plan.Units {
		out[i] = fmtUnit{kind: u.Kind.String()}
	}
	return out
}

// snapshotByName indexes the obs registry by its cat+NUL+name key.
func snapshotByName() map[string]obs.Entry {
	out := map[string]obs.Entry{}
	for _, e := range obs.Snapshot() {
		out[e.Cat+"\x00"+e.Name] = e
	}
	return out
}

// inputTensor synthesizes a random tensor for one compiled input: [N,d]
// for vertex features, [M,d] for edge features, the parameter's own
// shape otherwise. Values are small positives so divisions (edge
// softmax) and exponentials stay benign.
func inputTensor(rng *rand.Rand, g *graph.Graph, dag *gir.DAG, spec exec.InputSpec) *tensor.Tensor {
	var leaf *gir.Node
	for _, n := range dag.Leaves() {
		if n.Key == spec.Key && leafKindMatches(n.LeafKind, spec.Kind) {
			leaf = n
			break
		}
	}
	if leaf == nil {
		panic(fmt.Sprintf("no leaf for input %v", spec))
	}
	shape := leaf.Shape
	switch spec.Kind {
	case exec.InVFeat:
		shape = append([]int{g.N}, shape...)
	case exec.InEFeat:
		shape = append([]int{g.M}, shape...)
	}
	t := tensor.New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = rng.Float32()*0.5 + 0.25
	}
	return t
}

func leafKindMatches(lk gir.LeafKind, ik exec.InputKind) bool {
	switch ik {
	case exec.InVFeat:
		return lk == gir.LeafSrcFeat || lk == gir.LeafDstFeat
	case exec.InEFeat:
		return lk == gir.LeafEdgeFeat
	default:
		return lk == gir.LeafParam
	}
}

// writeAnalyze renders the report as text, units sorted by time within
// each pass.
func writeAnalyze(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "=== EXPLAIN ANALYZE: %s on %s (n=%d, m=%d, iters=%d) ===\n",
		rep.Model, rep.Dataset, rep.N, rep.M, rep.Iters)
	if total, ok := rep.CompileNs["total"]; ok {
		fmt.Fprintf(w, "compile: %s", fmtDur(total))
		var phases []string
		for _, ph := range []string{"optimize", "autodiff", "partition", "materialize", "kernelgen"} {
			if ns, ok := rep.CompileNs[ph]; ok {
				phases = append(phases, fmt.Sprintf("%s %s", ph, fmtDur(ns)))
			}
		}
		if len(phases) > 0 {
			fmt.Fprintf(w, " (%s)", join(phases))
		}
		fmt.Fprintln(w)
	}
	writePlan(w, rep)
	for _, pass := range []string{"fwd", "bwd"} {
		var units []UnitProfile
		for _, u := range rep.Units {
			if u.Pass == pass {
				units = append(units, u)
			}
		}
		if len(units) == 0 {
			continue
		}
		sort.SliceStable(units, func(i, j int) bool { return units[i].TotalNs > units[j].TotalNs })
		fmt.Fprintf(w, "\n%s units by time:\n", passName(pass))
		for _, u := range units {
			fmt.Fprintf(w, "  %-28s %6.1f%%  %10s/iter  allocs/iter %-5d",
				u.Label, u.Fraction*100, fmtDur(u.NsPerIt), u.Allocs)
			if len(u.Counters) > 0 {
				keys := make([]string, 0, len(u.Counters))
				for k := range u.Counters {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(w, " %s=%d", k, u.Counters[k])
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\nattribution: %.1f%% of wall %s attributed to %d execution units\n",
		rep.Coverage*100, fmtDur(rep.WallNs), len(rep.Units))
	fmt.Fprintf(w, "pool: hits=%d misses=%d\n", rep.PoolHits, rep.PoolMisses)
}

// writePlan renders the adaptive-planning annotation: which plan the
// run executed (static, measured-validated static, or learned), and for
// a settled plan the per-knob decisions with their measured rationale.
func writePlan(w io.Writer, rep *Report) {
	if rep.Plan == nil {
		if rep.PlanDiag != "" {
			fmt.Fprintf(w, "plan: static (plan store unreadable: %s)\n", rep.PlanDiag)
		}
		// Static with no plan store in play: stay silent, the line would
		// be noise on every non-adaptive run.
		return
	}
	p := rep.Plan
	if p.Learned() {
		fmt.Fprintf(w, "plan: learned(gen=%d) — measured %+.1f%% vs static\n", p.Gen, p.WinPct())
	} else {
		fmt.Fprintf(w, "plan: static (measured-validated, gen=%d)\n", p.Gen)
	}
	for _, d := range p.Decisions {
		unit := ""
		if d.Unit != "" {
			unit = d.Unit + " "
		}
		if d.Diverged() {
			fmt.Fprintf(w, "  %s%s: static %d → learned %d — %s\n", unit, d.Knob, d.Static, d.Learned, d.Why)
		} else {
			fmt.Fprintf(w, "  %s%s: kept %d — %s\n", unit, d.Knob, d.Static, d.Why)
		}
	}
}

func passName(p string) string {
	if p == "fwd" {
		return "forward"
	}
	return "backward"
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

package main

import (
	"fmt"
	"io"
	"strings"

	"seastar/internal/exec"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/kernels"
)

// writeExplain prints the EXPLAIN view: optimized forward GIR, backward
// GIR, and the fused execution-unit plans of both passes, each seastar
// unit annotated with its kernel's aggregation direction, materialized
// outputs and feature-tile plan.
func writeExplain(w io.Writer, model string, c *exec.CompiledUDF) {
	fmt.Fprintf(w, "=== %s: forward GIR (optimized) ===\n%s", model, c.Fwd)
	if c.Grads != nil {
		fmt.Fprintf(w, "\n=== backward GIR (optimized) ===\n%s", c.Grads.DAG)
	}
	writeUnits(w, "forward", c.FwdPlan, func(u *fusion.Unit) string { return kernelNote(c.FwdKernel(u), c.MaterializedFwd(u)) })
	if c.BwdPlan != nil {
		writeUnits(w, "backward", c.BwdPlan, func(u *fusion.Unit) string { return kernelNote(c.BwdKernel(u), c.MaterializedBwd(u)) })
	}
}

func writeUnits(w io.Writer, pass string, plan *fusion.Plan, note func(*fusion.Unit) string) {
	fmt.Fprintf(w, "\n=== %s execution units (seastar fusion) ===\n", pass)
	for _, u := range plan.Units {
		fmt.Fprintln(w, " ", u)
		if n := note(u); n != "" {
			fmt.Fprintln(w, "   ", n)
		}
	}
}

// kernelNote summarizes a compiled seastar kernel for the EXPLAIN
// output: what materializes, the feature-tile plan, and the closure
// compiler's decision — the matched pattern when the edge loop runs
// specialized, or the fallback reason when it stays on the interpreter.
// Nil (dense and paramgrad units carry no seastar kernel) yields an
// empty note.
func kernelNote(k *kernels.Kernel, mat []*gir.Node) string {
	if k == nil {
		return ""
	}
	var parts []string
	if len(mat) > 0 {
		ids := make([]string, len(mat))
		for i, m := range mat {
			ids[i] = fmt.Sprintf("%%%d", m.ID)
		}
		parts = append(parts, "materializes "+strings.Join(ids, ","))
	}
	tileable, width, tile := k.TilePlan()
	if tileable && tile < width {
		parts = append(parts, fmt.Sprintf("tiled %d/%d", tile, width))
	} else if width > 0 {
		parts = append(parts, fmt.Sprintf("untiled width %d", width))
	}
	if ok, name := k.Specialized(); ok {
		parts = append(parts, "specialized="+name)
	} else {
		parts = append(parts, "interpreted ("+name+")")
	}
	if len(parts) == 0 {
		return ""
	}
	return "kernel: " + strings.Join(parts, ", ")
}

// Command seastar-inspect shows what the Seastar compiler does with a
// vertex-centric program: the traced forward GIR with graph types, the
// auto-differentiated backward GIR, and the execution units produced by
// the seastar fusion FSM (the Figure-6 boxes):
//
//	seastar-inspect -model gat
//	seastar-inspect -model rgcn -relations 46 -in 16 -hidden 16
package main

import (
	"flag"
	"fmt"
	"os"

	"seastar/internal/autodiff"
	"seastar/internal/fusion"
	"seastar/internal/gir"
)

func main() {
	model := flag.String("model", "gat", "gcn|gat|appnp|rgcn")
	in := flag.Int("in", 16, "input feature width")
	hidden := flag.Int("hidden", 16, "output width of the inspected layer")
	relations := flag.Int("relations", 4, "relation count (rgcn)")
	flag.Parse()

	b := gir.NewBuilder()
	var udf gir.UDF
	switch *model {
	case "gcn":
		b.VFeature("h", *in)
		b.VFeature("norm", 1)
		W := b.Param("W", *in, *hidden)
		udf = func(v *gir.Vertex) *gir.Value {
			return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
		}
	case "gat":
		b.VFeature("eu", 1)
		b.VFeature("ev", 1)
		b.VFeature("h", *hidden)
		udf = func(v *gir.Vertex) *gir.Value {
			e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
			a := e.Div(e.AggSum())
			return a.Mul(v.Nbr("h")).AggSum()
		}
	case "appnp":
		b.VFeature("h", *hidden)
		b.VFeature("h0", *hidden)
		b.VFeature("sn", 1)
		b.VFeature("dn", 1)
		udf = func(v *gir.Vertex) *gir.Value {
			agg := v.Nbr("h").Mul(v.Nbr("sn")).AggSum()
			return agg.Mul(v.Self("dn")).MulScalar(0.9).Add(v.Self("h0").MulScalar(0.1))
		}
	case "rgcn":
		b.VFeature("h", *in)
		b.EFeature("norm", 1)
		Ws := b.Param("W", *relations, *in, *hidden)
		udf = func(v *gir.Vertex) *gir.Value {
			return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(gir.AggSum, gir.AggSum)
		}
	default:
		fmt.Fprintf(os.Stderr, "seastar-inspect: unknown model %q\n", *model)
		os.Exit(1)
	}

	fwd, err := b.Build(udf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seastar-inspect:", err)
		os.Exit(1)
	}
	fwd = fusion.Optimize(fwd)
	fmt.Printf("=== %s: forward GIR (optimized) ===\n%s", *model, fwd)

	grads, err := autodiff.Backward(fwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seastar-inspect:", err)
		os.Exit(1)
	}
	bwd := fusion.Optimize(grads.DAG)
	fmt.Printf("\n=== backward GIR (optimized) ===\n%s", bwd)

	for _, pass := range []struct {
		name string
		dag  *gir.DAG
	}{{"forward", fwd}, {"backward", bwd}} {
		name, dag := pass.name, pass.dag
		plan, err := fusion.Partition(dag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seastar-inspect:", err)
			os.Exit(1)
		}
		fmt.Printf("\n=== %s execution units (seastar fusion) ===\n", name)
		for _, u := range plan.Units {
			fmt.Println(" ", u)
		}
	}
}

// Command seastar-inspect is EXPLAIN / EXPLAIN ANALYZE for compiled
// vertex-centric programs: what the Seastar compiler does with a UDF, and
// where a run actually spends its time.
//
// Default (EXPLAIN): the traced forward GIR with graph types, the
// auto-differentiated backward GIR, and the execution units produced by
// the seastar fusion FSM (the Figure-6 boxes), each annotated with its
// kernel's materializations and feature-tile plan:
//
//	seastar-inspect -model gat
//	seastar-inspect -model rgcn -relations 46 -in 16 -hidden 16
//
// -dot renders the same thing as Graphviz (one digraph per pass, fused
// units as clusters, graph types on every tensor):
//
//	seastar-inspect -model gat -dot -pass fwd | dot -Tsvg > gat_fwd.svg
//
// -analyze (EXPLAIN ANALYZE) runs the program — forward and backward —
// on a synthetic Zipf graph or a named dataset's topology and attributes
// the measured wall time, allocations and kernel counters to execution
// units via the obs registry:
//
//	seastar-inspect -model gat -analyze
//	seastar-inspect -model gcn -analyze -dataset cora -json profile.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"seastar/internal/exec"
)

func main() {
	model := flag.String("model", "gat", "gcn|gat|appnp|rgcn")
	in := flag.Int("in", 16, "input feature width")
	hidden := flag.Int("hidden", 16, "output width of the inspected layer")
	relations := flag.Int("relations", 4, "relation count (rgcn)")
	dot := flag.Bool("dot", false, "emit Graphviz instead of text")
	pass := flag.String("pass", "all", "which pass to render with -dot: fwd|bwd|all")
	analyze := flag.Bool("analyze", false, "run the program and attribute measured time to execution units")
	dataset := flag.String("dataset", "", "named dataset topology for -analyze (empty = synthetic Zipf graph)")
	n := flag.Int("n", 30000, "synthetic graph vertex count (-analyze)")
	deg := flag.Int("deg", 8, "synthetic graph average degree (-analyze)")
	iters := flag.Int("iters", 5, "measured iterations (-analyze)")
	seed := flag.Int64("seed", 1, "graph + feature seed (-analyze)")
	gpu := flag.String("gpu", "V100", "simulated GPU profile (-analyze)")
	plans := flag.String("plans", "", "adaptive plan store: apply the learned plan for this model/graph/host and annotate the report (-analyze)")
	jsonOut := flag.String("json", "", "also write the -analyze report as JSON to this file (\"-\" = stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the -analyze run")
	flag.Parse()

	p := modelParams{in: *in, hidden: *hidden, relations: *relations}

	if *analyze {
		if *cpuprofile != "" {
			f, err := os.Create(*cpuprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := pprof.StartCPUProfile(f); err != nil {
				fatal(err)
			}
			defer pprof.StopCPUProfile()
		}
		rep, err := runAnalyze(analyzeOptions{
			Model: *model, Params: p, Dataset: *dataset,
			N: *n, Deg: *deg, Iters: *iters, Seed: *seed, GPU: *gpu,
			PlanPath: *plans,
		})
		if err != nil {
			fatal(err)
		}
		if *jsonOut != "" {
			if err := writeJSON(*jsonOut, rep); err != nil {
				fatal(err)
			}
		}
		if *jsonOut != "-" {
			writeAnalyze(os.Stdout, rep)
		}
		return
	}

	dag, err := buildModel(*model, p)
	if err != nil {
		fatal(err)
	}
	c, err := exec.Compile(dag)
	if err != nil {
		fatal(err)
	}

	if *dot {
		passes := []string{*pass}
		if *pass == "all" {
			passes = []string{"fwd", "bwd"}
		}
		for _, ps := range passes {
			if err := writeDOT(os.Stdout, *model, ps, c); err != nil {
				fatal(err)
			}
		}
		return
	}
	writeExplain(os.Stdout, *model, c)
}

func writeJSON(path string, rep *Report) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seastar-inspect:", err)
	os.Exit(1)
}

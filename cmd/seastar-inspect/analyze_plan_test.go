// Tests for the EXPLAIN ANALYZE adaptive-plan annotation: the
// learned(gen=K) and measured-validated renderings are pinned as golden
// files from fully deterministic reports, and a live round trip proves a
// plan persisted by the tuner is loaded, applied and annotated — with a
// corrupt store falling back to static cleanly.
package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seastar/internal/adapt"
)

// planReport builds a deterministic Report so writeAnalyze output is
// byte-stable for the golden files (a live run's timings are not).
func planReport() *Report {
	return &Report{
		Model: "gat", Dataset: "synthetic-zipf", N: 1000, M: 8000, Iters: 3,
		WallNs: 3_000_000, UnitsNs: 2_900_000, Coverage: 0.9667,
		CompileNs: map[string]int64{"total": 120_000, "optimize": 30_000},
		Units: []UnitProfile{
			{
				Pass: "fwd", Label: "fwd/unit 0 [seastar]", Kind: "seastar",
				Count: 3, TotalNs: 1_800_000, NsPerIt: 600_000, Fraction: 0.60, Allocs: 4,
				Counters: map[string]int64{"edges": 8000, "rows": 1000, "tile_width": 8},
			},
			{
				Pass: "bwd", Label: "bwd/unit 1 [seastar]", Kind: "seastar",
				Count: 3, TotalNs: 1_100_000, NsPerIt: 366_666, Fraction: 0.3667, Allocs: 2,
			},
		},
		PoolHits: 12, PoolMisses: 3,
	}
}

func TestAnalyzePlanGolden(t *testing.T) {
	cases := []struct {
		name string
		plan *adapt.Plan
		diag string
	}{
		{
			name: "learned",
			plan: &adapt.Plan{
				Version: 1, Gen: 4,
				Tuning: adapt.Tuning{Prefetch: 1, SampleWorkers: 1},
				BaseNs: 661_000_000, BestNs: 552_000_000,
				Decisions: []adapt.Decision{{
					Unit: "pipeline", Knob: "prefetch", Static: 4, Learned: 1,
					WinPct: 16.5,
					Why:    "measured 16.5% faster than static over 2 consecutive rounds (min of 3 trials each)",
				}},
			},
		},
		{
			name: "validated",
			plan: &adapt.Plan{
				Version: 1, Gen: 3,
				Decisions: []adapt.Decision{{
					Unit: "fwd/unit 0 [seastar]", Knob: "tile_width", Static: 8, Learned: 8,
					WinPct: 4.2,
					Why:    "validated: best challenger (tile=4) measured +4.2%, below the 10% sustained-win bar",
				}},
			},
		},
		{
			name: "unreadable",
			diag: "adapt: plan file plans.json: invalid character 'n' looking for beginning of object key string",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := planReport()
			rep.Plan, rep.PlanDiag = tc.plan, tc.diag
			var buf bytes.Buffer
			writeAnalyze(&buf, rep)
			checkGolden(t, "plan_"+tc.name+"_analyze.txt", buf.Bytes())
		})
	}
}

// TestAnalyzePlanRoundTrip drives the real loop: an analyze run reports
// its plan key, a plan saved under that key is loaded and applied by the
// next run, and the annotation names it. Corrupting the store afterwards
// must fall back to the static plan with a diagnostic, not an error.
func TestAnalyzePlanRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full engine")
	}
	planPath := filepath.Join(t.TempDir(), "plans.json")
	opts := analyzeOptions{
		Model:  "gat",
		Params: modelParams{in: 16, hidden: 16, relations: 4},
		N:      2000, Deg: 4, Iters: 1, Seed: 3, GPU: "V100",
		PlanPath: planPath,
	}

	// Cold: no store yet — static, no diagnostic, but the key is minted.
	r1, err := runAnalyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Plan != nil || r1.PlanDiag != "" {
		t.Fatalf("missing plan store must be silent static: plan=%v diag=%q", r1.Plan, r1.PlanDiag)
	}
	if r1.PlanKey.Model != "gat" || r1.PlanKey.GraphFP == 0 || r1.PlanKey.Host == "" {
		t.Fatalf("degenerate plan key %+v", r1.PlanKey)
	}

	// Persist a learned plan under the reported key (unit labels come
	// from the run itself, so ApplyTuning has a real target).
	var unit string
	for _, u := range r1.Units {
		if u.Pass == "fwd" && u.Kind == "seastar" {
			unit = u.Label
			break
		}
	}
	if unit == "" {
		t.Fatal("no forward seastar unit in the report")
	}
	saved := adapt.Plan{
		Version: 1, Key: r1.PlanKey, Gen: 3,
		Tuning: adapt.Tuning{Units: map[string]adapt.UnitTuning{unit: {ChunksPerWorker: 4}}},
		BaseNs: 1000, BestNs: 800,
		Decisions: []adapt.Decision{{
			Unit: unit, Knob: "chunks_per_worker", Static: 8, Learned: 4,
			WinPct: 20, Why: "measured 20.0% faster than static over 2 consecutive rounds (min of 3 trials each)",
		}},
	}
	if err := adapt.NewStore(planPath).Save(saved); err != nil {
		t.Fatal(err)
	}

	// Warm: the plan loads, applies, and annotates.
	r2, err := runAnalyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Plan == nil {
		t.Fatal("persisted plan was not loaded")
	}
	if r2.Plan.Gen != 3 {
		t.Fatalf("loaded plan gen %d, want 3", r2.Plan.Gen)
	}
	var buf bytes.Buffer
	writeAnalyze(&buf, r2)
	out := buf.String()
	if !strings.Contains(out, "plan: learned(gen=3)") {
		t.Fatalf("annotation missing learned(gen=3):\n%s", out)
	}
	if !strings.Contains(out, "chunks_per_worker: static 8 → learned 4") {
		t.Fatalf("annotation missing the decision line:\n%s", out)
	}

	// Corrupt the store: the next run must fall back to static with a
	// diagnostic, never fail.
	if err := os.WriteFile(planPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3, err := runAnalyze(opts)
	if err != nil {
		t.Fatalf("corrupt plan store must not fail analyze: %v", err)
	}
	if r3.Plan != nil {
		t.Fatal("corrupt plan store still produced a plan")
	}
	if r3.PlanDiag == "" {
		t.Fatal("corrupt plan store left no diagnostic")
	}
	buf.Reset()
	writeAnalyze(&buf, r3)
	if !strings.Contains(buf.String(), "plan: static (plan store unreadable") {
		t.Fatalf("fallback annotation missing:\n%s", buf.String())
	}
}

package main

import (
	"fmt"
	"io"
	"strings"

	"seastar/internal/exec"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/kernels"
)

// writeDOT renders one pass of a compiled UDF as Graphviz: every GIR
// node is a box labelled with its graph type (S/D/E/P, A on
// aggregations) and per-row shape, fused execution units are drawn as
// clusters (the paper's Figure-6 boxes), leaves sit outside, and
// materialized tensors are shaded — everything that is NOT shaded inside
// a seastar cluster lives only in registers.
func writeDOT(w io.Writer, model, pass string, c *exec.CompiledUDF) error {
	var dag *gir.DAG
	var plan *fusion.Plan
	kern := c.FwdKernel
	mat := c.MaterializedFwd
	switch pass {
	case "fwd":
		dag, plan = c.Fwd, c.FwdPlan
	case "bwd":
		if c.BwdPlan == nil {
			return fmt.Errorf("no backward plan (inference-only compile)")
		}
		dag, plan = c.Grads.DAG, c.BwdPlan
		kern = c.BwdKernel
		mat = c.MaterializedBwd
	default:
		return fmt.Errorf("unknown pass %q (want fwd|bwd)", pass)
	}

	materialized := map[*gir.Node]bool{}
	for _, u := range plan.Units {
		for _, m := range mat(u) {
			materialized[m] = true
		}
	}
	for _, out := range dag.Outputs {
		materialized[out] = true
	}
	isOut := map[*gir.Node]bool{}
	for _, out := range dag.Outputs {
		isOut[out] = true
	}

	fmt.Fprintf(w, "digraph seastar_%s_%s {\n", model, pass)
	fmt.Fprintf(w, "  rankdir=TB;\n")
	fmt.Fprintf(w, "  labelloc=t;\n")
	fmt.Fprintf(w, "  label=%q;\n", fmt.Sprintf("%s %s: GIR + fused execution units", model, pass))
	fmt.Fprintf(w, "  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	// Leaves first, outside every cluster.
	for _, n := range dag.Nodes {
		if n.Op == gir.OpLeaf {
			fmt.Fprintf(w, "  n%d [label=%q, style=dashed];\n", n.ID, leafLabel(n))
		}
	}
	// One cluster per execution unit.
	for _, u := range plan.Units {
		fmt.Fprintf(w, "  subgraph cluster_u%d {\n", u.ID)
		fmt.Fprintf(w, "    label=%q;\n", clusterLabel(u, kern(u)))
		fmt.Fprintf(w, "    style=rounded;\n")
		fmt.Fprintf(w, "    color=%s;\n", clusterColor(u.Kind))
		for _, n := range u.Nodes {
			attrs := []string{fmt.Sprintf("label=%q", nodeLabel(n))}
			if materialized[n] {
				attrs = append(attrs, `style=filled`, `fillcolor=lightgoldenrod1`)
			}
			if isOut[n] {
				attrs = append(attrs, `peripheries=2`)
			}
			fmt.Fprintf(w, "    n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
		}
		fmt.Fprintf(w, "  }\n")
	}
	// Data edges, labelled with the value's graph type.
	for _, n := range dag.Nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(w, "  n%d -> n%d [label=%q, fontsize=9];\n", in.ID, n.ID, edgeLabel(in))
		}
	}
	fmt.Fprintf(w, "}\n")
	return nil
}

// leafLabel names a leaf with its kind, key, graph type and shape, e.g.
// `h ⟨S⟩ [16]` or `saved %4 ⟨E⟩ [1]`.
func leafLabel(n *gir.Node) string {
	name := n.Key
	switch n.LeafKind {
	case gir.LeafSaved:
		if n.Ref != nil {
			name = fmt.Sprintf("saved %%%d %s", n.Ref.ID, n.Ref.Op)
		} else {
			name = "saved"
		}
	case gir.LeafGrad:
		name = "grad(out)"
	}
	return fmt.Sprintf("%s <%s> %v", name, n.Type, n.Shape)
}

// nodeLabel names an operator node: id, op, graph type, shape, plus the
// aggregation direction on agg nodes (A:D / A:S).
func nodeLabel(n *gir.Node) string {
	if n.Op.IsAgg() {
		return fmt.Sprintf("%%%d %s %s <%s> %v", n.ID, n.Op, n.Dir, n.Type, n.Shape)
	}
	return fmt.Sprintf("%%%d %s <%s> %v", n.ID, n.Op, n.Type, n.Shape)
}

func edgeLabel(in *gir.Node) string {
	return fmt.Sprintf("%s%v", in.Type, in.Shape)
}

// clusterLabel titles a unit box; seastar units carry their kernel's
// tile plan so the rendering shows what the engine will actually run.
func clusterLabel(u *fusion.Unit, k *kernels.Kernel) string {
	label := fmt.Sprintf("unit %d [%s]", u.ID, u.Kind)
	if k != nil {
		label += " " + k.Dir.String()
		if tileable, width, tile := k.TilePlan(); tileable && tile < width {
			label += fmt.Sprintf(" tiled %d/%d", tile, width)
		}
	}
	return label
}

func clusterColor(kind fusion.UnitKind) string {
	switch kind {
	case fusion.KindSeastar:
		return "blue"
	case fusion.KindDense:
		return "darkgreen"
	default:
		return "red3"
	}
}

GO ?= go

.PHONY: all build test race race-serve fuzz-smoke fmt vet check ci bench-kernels

all: check

build:
	$(GO) build ./...

test: build
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) fuzz-smoke

# Race-check the concurrency-bearing packages: the scheduler, the kernel
# engine that dispatches onto it, and the tensor ops/pool it parallelizes.
race:
	$(GO) test -race ./internal/kernels/... ./internal/tensor/... ./internal/sched/...

# Race-check the serving layer, including the 64-goroutine mixed
# cold/warm stress test with concurrent graph swaps.
race-serve:
	$(GO) test -race -count=1 ./internal/serve/...

# Short randomized runs of the native fuzz targets; regressions land in
# testdata/fuzz and then run on every plain `go test`.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzFusionEquivalence -fuzztime=10s ./internal/fusion
	$(GO) test -run='^$$' -fuzz=FuzzEdgeBalanced -fuzztime=10s ./internal/sched

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet test race race-serve

ci:
	./scripts/ci.sh

# Regenerate BENCH_kernels.json (CPU kernel-engine microbenchmark).
bench-kernels:
	$(GO) run ./cmd/seastar-bench -exp kernels -kernels-out BENCH_kernels.json

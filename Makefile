GO ?= go

.PHONY: all build test race fmt vet check bench-kernels

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-check the concurrency-bearing packages: the scheduler, the kernel
# engine that dispatches onto it, and the tensor ops/pool it parallelizes.
race:
	$(GO) test -race ./internal/kernels/... ./internal/tensor/... ./internal/sched/...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet test race

# Regenerate BENCH_kernels.json (CPU kernel-engine microbenchmark).
bench-kernels:
	$(GO) run ./cmd/seastar-bench -exp kernels -kernels-out BENCH_kernels.json

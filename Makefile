GO ?= go
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build test race race-serve race-pipeline race-delta race-shard \
	fuzz-smoke fmt vet staticcheck coverage check ci bench-kernels \
	bench-pipeline bench-gemm bench-serve bench-delta bench-shard \
	bench-oocore oocore-smoke profile-kernels bench-check

all: check

build:
	$(GO) build ./...

test: build
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) fuzz-smoke

# Race-check the concurrency-bearing packages: the scheduler, the kernel
# engine that dispatches onto it, and the tensor ops/pool it parallelizes.
race:
	$(GO) test -race ./internal/kernels/... ./internal/tensor/... ./internal/sched/...

# Race-check the serving layer, including the 64-goroutine mixed
# cold/warm stress test with concurrent graph swaps.
race-serve:
	$(GO) test -race -count=1 ./internal/serve/...

# Race-check the mini-batch training pipeline and its feeding layers,
# including the mmap store's concurrent prefetcher.
race-pipeline:
	$(GO) test -race -count=1 ./internal/pipeline/... ./internal/train/... ./internal/sampling/... ./internal/store/...

# Race-check the graph-delta path specifically: the concurrent
# delta+infer soak (readers sampling logits while a writer applies a
# delta chain), the delta/swap generation race, and the delta chains.
race-delta:
	$(GO) test -race -count=1 -run 'TestDelta|TestEngineDelta|TestHTTPDelta' ./internal/serve

# Race-check the sharded serving stack: a coordinator fronting in-process
# HTTP workers under concurrent infer load, with a worker killed and
# rescheduled mid-soak, plus the end-to-end bitwise equivalence sweep.
race-shard:
	$(GO) test -race -count=1 -run 'TestRaceSoak|TestKilledWorker|TestWorkerRestartInPlace|TestEndToEndBitwise' ./internal/shard

# Short randomized runs of the native fuzz targets; regressions land in
# testdata/fuzz and then run on every plain `go test`.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzFusionEquivalence -fuzztime=10s ./internal/fusion
	$(GO) test -run='^$$' -fuzz=FuzzEdgeBalanced -fuzztime=10s ./internal/sched
	$(GO) test -run='^$$' -fuzz=FuzzPartitionInvariants -fuzztime=10s ./internal/part
	$(GO) test -run='^$$' -fuzz=FuzzDeltaEquivalence -fuzztime=10s ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzStoreEquivalence -fuzztime=10s ./internal/store

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Pinned staticcheck via the module proxy; falls back to a PATH binary.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	fi

# Coverage with the ratchet floor from scripts/coverage_floor.txt.
coverage:
	$(GO) test -coverprofile=cover.out ./...
	@cov=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	floor=$$(cat scripts/coverage_floor.txt); \
	awk -v c="$$cov" -v f="$$floor" 'BEGIN { \
		if (c + 0 < f + 0) { printf "coverage %.1f%% below floor %.1f%%\n", c, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", c, f }'

check: fmt vet test race race-serve race-pipeline race-delta race-shard

ci:
	./scripts/ci.sh

# Regenerate BENCH_kernels.json (CPU kernel-engine microbenchmark).
bench-kernels:
	$(GO) run ./cmd/seastar-bench -exp kernels -kernels-out BENCH_kernels.json

# Regenerate BENCH_pipeline.json (mini-batch pipeline overlap benchmark,
# including the adaptive re-planning evidence the CI gate reads).
bench-pipeline:
	$(GO) run ./cmd/seastar-bench -exp pipeline -pipeline-out BENCH_pipeline.json -adapt-vertices 100000 -adapt-epochs 60 -adapt-explore 5

# Regenerate BENCH_gemm.json (blocked GEMM + tiled aggregation benchmark).
bench-gemm:
	$(GO) run ./cmd/seastar-bench -exp gemm -gemm-out BENCH_gemm.json

# Regenerate BENCH_serve.json (adaptive micro-batch re-planning under
# saturating load — the committed evidence the adaptive CI gate reads).
# Runs for a minute-plus: the tuner needs measurement windows that
# dominate per-request latency on a 100k-vertex graph.
bench-serve:
	$(GO) run ./cmd/seastar-bench -exp serve -serve-out BENCH_serve.json

# Regenerate BENCH_delta.json (incremental k-hop recompute vs full
# forward and rebuild-from-scratch on a power-law delta stream — the
# committed evidence the delta CI gate reads). Each delta pays a full
# rebuild baseline on a 100k-vertex graph, so this takes ~10s.
bench-delta:
	$(GO) run ./cmd/seastar-bench -exp delta -delta-out BENCH_delta.json

# Regenerate BENCH_shard.json (edge-balanced vertex-cut partitioning +
# sharded serving vs single-process — the committed evidence the shard
# CI gate reads). Deploys 4 workers + a single-shard baseline in-process
# on a 100k-vertex graph, so this takes ~1 min.
bench-shard:
	$(GO) run ./cmd/seastar-bench -exp shard -shard-out BENCH_shard.json

# Regenerate BENCH_oocore.json (mmap-backed store vs in-memory training —
# the committed evidence the oocore CI gate reads). Converts a 150k-vertex
# graph to a store file and trains two epochs each way, so this takes ~10s.
bench-oocore:
	$(GO) run ./cmd/seastar-bench -exp oocore -oocore-out BENCH_oocore.json

# Run the oocore bench under a cgroup-v2 memory cap when the host allows
# it (model-only fallback otherwise). Does not overwrite the committed JSON.
oocore-smoke:
	./scripts/oocore_smoke.sh

# CPU-profile the kernel and gemm benchmarks for go tool pprof.
profile-kernels:
	$(GO) run ./cmd/seastar-bench -exp kernels -exp gemm -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "inspect with: go tool pprof cpu.pprof"

# Fail if the modeled benchmark speedups regress vs the committed JSON.
bench-check:
	$(GO) run ./scripts -kernels BENCH_kernels.json -pipeline BENCH_pipeline.json -gemm BENCH_gemm.json -fused BENCH_fused.json -serve BENCH_serve.json -delta BENCH_delta.json -shard BENCH_shard.json -oocore BENCH_oocore.json

module seastar

go 1.22

package seastar_test

import (
	"math/rand"
	"strings"
	"testing"

	"seastar"
	"seastar/internal/tensor"
)

// newSessionWithGraph builds a session over a small random graph.
func newSessionWithGraph(t *testing.T, n, m int) (*seastar.Session, *seastar.Graph) {
	t.Helper()
	sess, err := seastar.NewSession(seastar.WithGPU("V100"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	srcs := make([]int32, m)
	dsts := make([]int32, m)
	for i := range srcs {
		srcs[i] = int32(rng.Intn(n))
		dsts[i] = int32(rng.Intn(n))
	}
	g, err := seastar.FromEdges(n, srcs, dsts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetGraph(g); err != nil {
		t.Fatal(err)
	}
	return sess, g
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sess, _ := newSessionWithGraph(t, 30, 120)
	prog, err := sess.Compile(func(b *seastar.Builder) seastar.UDF {
		b.VFeature("h", 8)
		W := b.Param("W", 8, 4)
		return func(v *seastar.Vertex) *seastar.Value {
			return v.Nbr("h").MatMul(W).AggSum()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	h := sess.Input(tensor.Randn(rng, 1, 30, 8), "h")
	w := sess.Param(tensor.XavierUniform(rng, 8, 4), "W")
	out, err := prog.Apply(
		map[string]*seastar.Variable{"h": h}, nil,
		map[string]*seastar.Variable{"W": w})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value.Rows() != 30 || out.Value.Cols() != 4 {
		t.Fatalf("output shape %v", out.Value.Shape())
	}
	// Train one step through the public optimizer.
	loss := sess.Engine.SumAll(sess.Engine.Sigmoid(out))
	sess.Engine.Backward(loss)
	if w.Grad == nil {
		t.Fatal("no gradient through the public API")
	}
	opt := seastar.NewAdam([]*seastar.Variable{w}, 0.01)
	opt.Step()
	sess.EndIteration()
	if sess.Dev.Elapsed() <= 0 {
		t.Fatal("no simulated time accumulated")
	}
}

func TestSessionOptionValidation(t *testing.T) {
	if _, err := seastar.NewSession(seastar.WithGPU("H100")); err == nil {
		t.Fatal("unknown GPU accepted")
	}
	if _, err := seastar.NewSession(seastar.WithWorkScale(0)); err == nil {
		t.Fatal("zero work scale accepted")
	}
	if _, err := seastar.NewSession(seastar.WithWorkScale(0.5)); err != nil {
		t.Fatal(err)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	sess, _ := newSessionWithGraph(t, 5, 10)
	_, err := sess.Compile(func(b *seastar.Builder) seastar.UDF {
		return func(v *seastar.Vertex) *seastar.Value {
			return v.Nbr("unregistered").AggSum()
		}
	})
	if err == nil {
		t.Fatal("trace error not surfaced")
	}
}

func TestApplyBeforeSetGraphFails(t *testing.T) {
	sess, err := seastar.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sess.Compile(func(b *seastar.Builder) seastar.UDF {
		b.VFeature("h", 2)
		return func(v *seastar.Vertex) *seastar.Value { return v.Nbr("h").AggSum() }
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Apply(nil, nil, nil); err == nil {
		t.Fatal("Apply without a graph accepted")
	}
}

func TestProgramIntrospection(t *testing.T) {
	sess, _ := newSessionWithGraph(t, 10, 30)
	prog, err := sess.Compile(func(b *seastar.Builder) seastar.UDF {
		b.VFeature("eu", 1)
		b.VFeature("ev", 1)
		b.VFeature("h", 4)
		return func(v *seastar.Vertex) *seastar.Value {
			e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
			a := e.Div(e.AggSum())
			return a.Mul(v.Nbr("h")).AggSum()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Inputs()) != 3 {
		t.Fatalf("inputs: %v", prog.Inputs())
	}
	if !strings.Contains(prog.ForwardIR(), "Agg<D>") {
		t.Fatal("forward IR missing aggregation")
	}
	if !strings.Contains(prog.BackwardIR(), "A:S") {
		t.Fatal("backward IR missing A:S")
	}
	sum := prog.PlanSummary()
	if !strings.Contains(sum, "forward units:") || !strings.Contains(sum, "seastar") {
		t.Fatalf("plan summary:\n%s", sum)
	}
}

func TestGPUList(t *testing.T) {
	gpus := seastar.GPUs()
	if len(gpus) != 3 || gpus[0] != "V100" {
		t.Fatalf("GPUs: %v", gpus)
	}
}

// Custom-model example: the point of the vertex-centric API is that NEW
// models — not just the zoo — compile to fused kernels. This program
// defines a gated aggregation layer that none of the built-in models
// implement:
//
//	gate_uv = sigmoid(su + sv)                  (per-edge scalar gate)
//	h'_v    = Σ_u gate_uv · h_u  /  (Σ_u gate_uv)  (gate-normalized mean)
//
// and trains it end to end. Compare the execution plan it prints with
// GAT's: the compiler discovers the same seastar pattern automatically.
//
//	go run ./examples/custom
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"seastar"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

const (
	numVertices = 400
	numFeatures = 24
	hidden      = 12
	numClasses  = 3
)

func main() {
	degreeSort := flag.Bool("degree-sort", true, "degree-sort the graph before training (§6.3.3)")
	flag.Parse()
	rng := rand.New(rand.NewSource(21))
	sess, err := seastar.NewSession(seastar.WithGPU("1080Ti"), seastar.WithDegreeSort(*degreeSort))
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.SetGraph(graph.PowerLaw(rng, numVertices, 5)); err != nil {
		log.Fatal(err)
	}

	gated := func(dim int) *seastar.Program {
		prog, err := sess.Compile(func(b *seastar.Builder) seastar.UDF {
			b.VFeature("s", 1) // per-vertex gate score
			b.VFeature("h", dim)
			return func(v *seastar.Vertex) *seastar.Value {
				gate := v.Nbr("s").Add(v.Self("s")).Sigmoid()
				num := gate.Mul(v.Nbr("h")).AggSum()
				den := gate.AggSum().AddScalar(1e-6)
				return num.Div(den) // D/D division fuses post-aggregation
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return prog
	}
	layer1 := gated(hidden)
	layer2 := gated(numClasses)

	fmt.Println("== gated-aggregation layer: compiled plan ==")
	fmt.Print(layer1.PlanSummary())

	e := sess.Engine
	x := sess.Input(tensor.Randn(rng, 1, numVertices, numFeatures), "x")
	w1 := sess.Param(tensor.XavierUniform(rng, numFeatures, hidden), "W1")
	g1 := sess.Param(tensor.XavierUniform(rng, hidden, 1), "g1")
	w2 := sess.Param(tensor.XavierUniform(rng, hidden, numClasses), "W2")
	g2 := sess.Param(tensor.XavierUniform(rng, numClasses, 1), "g2")

	labels := make([]int, numVertices)
	mask := make([]bool, numVertices)
	for v := range labels {
		labels[v] = rng.Intn(numClasses)
		mask[v] = rng.Float64() < 0.6
	}

	apply := func(prog *seastar.Program, x, w, gw *seastar.Variable) *seastar.Variable {
		h := e.MatMul(x, w)
		s := e.MatMul(h, gw)
		out, err := prog.Apply(map[string]*seastar.Variable{"s": s, "h": h}, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		return out
	}

	opt := seastar.NewAdam([]*seastar.Variable{w1, g1, w2, g2}, 0.02)
	for epoch := 1; epoch <= 30; epoch++ {
		h := e.ReLU(apply(layer1, x, w1, g1))
		logits := apply(layer2, h, w2, g2)
		loss := e.CrossEntropyMasked(logits, labels, mask)
		e.Backward(loss)
		opt.Step()
		if epoch%6 == 0 {
			fmt.Printf("epoch %2d  loss %.4f  acc %.3f\n", epoch,
				loss.Value.At1(0), nn.Accuracy(logits.Value, labels, mask))
		}
		sess.EndIteration()
	}
	fmt.Printf("\nsimulated GPU time: %v\n", sess.Dev.Elapsed())
}

// Heterogeneous example: an R-GCN layer over a multi-relation graph with
// per-edge-type weights and the hierarchical aggregation of §6.3.5 —
// the edge-type-sorted sequential kernel that turns heterogeneous
// training into the homogeneous case.
//
//	go run ./examples/hetero
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"seastar"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

const (
	numVertices  = 300
	numRelations = 5
	numFeatures  = 16
	hidden       = 12
	numClasses   = 3
)

func main() {
	degreeSort := flag.Bool("degree-sort", true, "degree-sort the graph before training (§6.3.3)")
	flag.Parse()
	rng := rand.New(rand.NewSource(11))
	sess, err := seastar.NewSession(seastar.WithGPU("V100"), seastar.WithDegreeSort(*degreeSort))
	if err != nil {
		log.Fatal(err)
	}

	// A knowledge-graph-like structure: random edges, each with one of
	// numRelations types, type-sorted per vertex for the fused kernel.
	g := graph.GNM(rng, numVertices, 2400)
	graph.RandomEdgeTypes(rng, g, numRelations)
	if err := g.SortEdgesByType(); err != nil {
		log.Fatal(err)
	}
	if err := sess.SetGraph(g); err != nil {
		log.Fatal(err)
	}

	// One R-GCN layer: project each in-neighbour with the weight of the
	// connecting edge's relation, normalize, aggregate per type then
	// across types (sum/sum here; try AggMax as the outer reduction for
	// inference-only models).
	makeLayer := func(in, out int) *seastar.Program {
		prog, err := sess.Compile(func(b *seastar.Builder) seastar.UDF {
			b.VFeature("h", in)
			b.EFeature("norm", 1)
			Ws := b.Param("W", numRelations, in, out)
			return func(v *seastar.Vertex) *seastar.Value {
				return v.Nbr("h").MatMulTyped(Ws).
					Mul(v.Edge("norm")).
					AggHier(seastar.AggSum, seastar.AggSum)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return prog
	}
	layer1 := makeLayer(numFeatures, hidden)
	layer2 := makeLayer(hidden, numClasses)
	fmt.Println("== R-GCN layer plan (one fused hetero kernel) ==")
	fmt.Print(layer1.PlanSummary())

	// Per-edge normalization 1/c_{v,r}: count same-type in-edges at the
	// destination.
	counts := map[[2]int32]float32{}
	for eid := 0; eid < g.M; eid++ {
		counts[[2]int32{g.Dsts[eid], g.EdgeTypes[eid]}]++
	}
	norm := tensor.New(g.M, 1)
	for eid := 0; eid < g.M; eid++ {
		norm.Set(eid, 0, 1/counts[[2]int32{g.Dsts[eid], g.EdgeTypes[eid]}])
	}

	e := sess.Engine
	x := sess.Input(tensor.Randn(rng, 1, numVertices, numFeatures), "x")
	normV := sess.Input(norm, "norm")
	ws1 := sess.Param(tensor.Uniform(rng, -0.4, 0.4, numRelations, numFeatures, hidden), "Ws1")
	ws2 := sess.Param(tensor.Uniform(rng, -0.4, 0.4, numRelations, hidden, numClasses), "Ws2")

	labels := make([]int, numVertices)
	mask := make([]bool, numVertices)
	for v := range labels {
		labels[v] = rng.Intn(numClasses)
		mask[v] = rng.Float64() < 0.5
	}

	opt := seastar.NewAdam([]*seastar.Variable{ws1, ws2}, 0.02)
	for epoch := 1; epoch <= 20; epoch++ {
		h, err := layer1.Apply(
			map[string]*seastar.Variable{"h": x},
			map[string]*seastar.Variable{"norm": normV},
			map[string]*seastar.Variable{"W": ws1})
		if err != nil {
			log.Fatal(err)
		}
		h = e.ReLU(h)
		logits, err := layer2.Apply(
			map[string]*seastar.Variable{"h": h},
			map[string]*seastar.Variable{"norm": normV},
			map[string]*seastar.Variable{"W": ws2})
		if err != nil {
			log.Fatal(err)
		}
		loss := e.CrossEntropyMasked(logits, labels, mask)
		e.Backward(loss)
		opt.Step()
		if epoch%5 == 0 {
			fmt.Printf("epoch %2d  loss %.4f  acc %.3f\n", epoch,
				loss.Value.At1(0), nn.Accuracy(logits.Value, labels, mask))
		}
		sess.EndIteration()
	}
	fmt.Printf("\nsimulated GPU time: %v\n", sess.Dev.Elapsed())
}

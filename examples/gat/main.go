// GAT example: author the paper's attention model (Figure 2 / Figure 3)
// with the vertex-centric API, inspect what the compiler produced (the
// graph-typed IR, the backward IR, and the fused execution units of
// Figure 6), then train it on a power-law graph.
//
//	go run ./examples/gat
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"seastar"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

const (
	numVertices = 500
	numFeatures = 32
	hidden      = 16
	numClasses  = 3
	slope       = 0.2
)

func main() {
	degreeSort := flag.Bool("degree-sort", true, "degree-sort the graph before training (§6.3.3)")
	flag.Parse()
	rng := rand.New(rand.NewSource(7))
	sess, err := seastar.NewSession(seastar.WithGPU("2080Ti"), seastar.WithDegreeSort(*degreeSort))
	if err != nil {
		log.Fatal(err)
	}
	// A skewed (preferential-attachment) graph: the workload Seastar's
	// degree sorting and dynamic load balancing are designed for.
	if err := sess.SetGraph(graph.PowerLaw(rng, numVertices, 6)); err != nil {
		log.Fatal(err)
	}

	// The attention layer, exactly as the paper writes it: per-edge
	// score from the two endpoints, a softmax over each vertex's
	// in-edges, and a weighted sum of neighbour features.
	attention := func(dim int) *seastar.Program {
		prog, err := sess.Compile(func(b *seastar.Builder) seastar.UDF {
			b.VFeature("eu", 1)
			b.VFeature("ev", 1)
			b.VFeature("h", dim)
			return func(v *seastar.Vertex) *seastar.Value {
				e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(slope).Exp()
				a := e.Div(e.AggSum())
				return a.Mul(v.Nbr("h")).AggSum()
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return prog
	}
	layer := attention(hidden)
	out := attention(numClasses)

	// What did the compiler do? Two fused kernels forward (the paper's
	// Figure 6 boxes), seastar-shaped kernels backward.
	fmt.Println("== forward GIR ==")
	fmt.Print(layer.ForwardIR())
	fmt.Println("\n== execution plan ==")
	fmt.Print(layer.PlanSummary())

	// Dense parameters around the graph kernels.
	e := sess.Engine
	x := sess.Input(tensor.Randn(rng, 1, numVertices, numFeatures), "x")
	w1 := sess.Param(tensor.XavierUniform(rng, numFeatures, hidden), "W1")
	a1u := sess.Param(tensor.XavierUniform(rng, hidden, 1), "a1u")
	a1v := sess.Param(tensor.XavierUniform(rng, hidden, 1), "a1v")
	w2 := sess.Param(tensor.XavierUniform(rng, hidden, numClasses), "W2")
	a2u := sess.Param(tensor.XavierUniform(rng, numClasses, 1), "a2u")
	a2v := sess.Param(tensor.XavierUniform(rng, numClasses, 1), "a2v")

	labels := make([]int, numVertices)
	mask := make([]bool, numVertices)
	for v := range labels {
		labels[v] = rng.Intn(numClasses)
		mask[v] = rng.Float64() < 0.5
	}

	apply := func(prog *seastar.Program, x, w, au, av *seastar.Variable) *seastar.Variable {
		h := e.MatMul(x, w)
		eu := e.MatMul(h, au)
		ev := e.MatMul(h, av)
		out, err := prog.Apply(map[string]*seastar.Variable{
			"eu": eu, "ev": ev, "h": h,
		}, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		return out
	}

	params := []*seastar.Variable{w1, a1u, a1v, w2, a2u, a2v}
	opt := seastar.NewAdam(params, 0.01)
	fmt.Println("\n== training ==")
	for epoch := 1; epoch <= 25; epoch++ {
		h := e.ReLU(apply(layer, x, w1, a1u, a1v))
		logits := apply(out, h, w2, a2u, a2v)
		loss := e.CrossEntropyMasked(logits, labels, mask)
		e.Backward(loss)
		opt.Step()
		if epoch%5 == 0 {
			fmt.Printf("epoch %2d  loss %.4f  acc %.3f\n", epoch,
				loss.Value.At1(0), nn.Accuracy(logits.Value, labels, mask))
		}
		sess.EndIteration()
	}
	fmt.Printf("\nsimulated GPU time: %v\n", sess.Dev.Elapsed())
}

// Quickstart: define a GCN layer with the vertex-centric API, compile it,
// and train a 2-layer model for node classification on a small random
// graph — the minimal end-to-end Seastar program.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"seastar"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

const (
	numVertices = 200
	numEdges    = 1200
	numFeatures = 32
	hidden      = 16
	numClasses  = 4
	epochs      = 30
)

func main() {
	degreeSort := flag.Bool("degree-sort", true, "degree-sort the graph before training (§6.3.3)")
	flag.Parse()
	rng := rand.New(rand.NewSource(42))

	// 1. A session owns a simulated GPU and the autograd engine.
	sess, err := seastar.NewSession(seastar.WithGPU("V100"), seastar.WithDegreeSort(*degreeSort))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a random graph and install it (Seastar degree-sorts it
	//    and moves the CSR structures to the device).
	srcs := make([]int32, numEdges)
	dsts := make([]int32, numEdges)
	for i := range srcs {
		srcs[i] = int32(rng.Intn(numVertices))
		dsts[i] = int32(rng.Intn(numVertices))
	}
	g, err := seastar.FromEdges(numVertices, srcs, dsts)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.SetGraph(g); err != nil {
		log.Fatal(err)
	}

	// 3. Write the GCN layer the way the paper's Figure 3 does: the
	//    logic of ONE vertex, reading its in-neighbours.
	makeLayer := func(in, out int) *seastar.Program {
		prog, err := sess.Compile(func(b *seastar.Builder) seastar.UDF {
			b.VFeature("h", in)
			b.VFeature("norm", 1)
			W := b.Param("W", in, out)
			return func(v *seastar.Vertex) *seastar.Value {
				return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return prog
	}
	layer1 := makeLayer(numFeatures, hidden)
	layer2 := makeLayer(hidden, numClasses)

	// 4. Data: random features, 1/in-degree normalizers, random labels.
	x := sess.Input(tensor.Randn(rng, 1, numVertices, numFeatures), "x")
	norm := tensor.New(numVertices, 1)
	for v := 0; v < numVertices; v++ {
		if d := sess.Graph().InDegrees()[v]; d > 0 {
			norm.Set(v, 0, 1/float32(d))
		}
	}
	normV := sess.Input(norm, "norm")
	w1 := sess.Param(tensor.XavierUniform(rng, numFeatures, hidden), "W1")
	w2 := sess.Param(tensor.XavierUniform(rng, hidden, numClasses), "W2")

	labels := make([]int, numVertices)
	mask := make([]bool, numVertices)
	for v := range labels {
		labels[v] = rng.Intn(numClasses)
		mask[v] = v%2 == 0 // train on half the vertices
	}

	// 5. Train. Each Apply runs the compiled fused kernels (forward and,
	//    through autograd, backward).
	opt := seastar.NewAdam([]*seastar.Variable{w1, w2}, 0.02)
	e := sess.Engine
	for epoch := 1; epoch <= epochs; epoch++ {
		h, err := layer1.Apply(
			map[string]*seastar.Variable{"h": x, "norm": normV}, nil,
			map[string]*seastar.Variable{"W": w1})
		if err != nil {
			log.Fatal(err)
		}
		h = e.Sigmoid(h)
		logits, err := layer2.Apply(
			map[string]*seastar.Variable{"h": h, "norm": normV}, nil,
			map[string]*seastar.Variable{"W": w2})
		if err != nil {
			log.Fatal(err)
		}
		loss := e.CrossEntropyMasked(logits, labels, mask)
		e.Backward(loss)
		opt.Step()
		if epoch%5 == 0 || epoch == 1 {
			acc := nn.Accuracy(logits.Value, labels, mask)
			fmt.Printf("epoch %2d  loss %.4f  train-acc %.3f\n",
				epoch, loss.Value.At1(0), acc)
		}
		sess.EndIteration()
	}
	fmt.Printf("\nsimulated GPU time: %v, peak device memory: %.2f MB\n",
		sess.Dev.Elapsed(), float64(sess.Dev.PeakBytes())/(1<<20))
}

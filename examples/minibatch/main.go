// Mini-batch example: neighbour-sampled training with Seastar as the
// training engine, the way sampling-based systems (Euler, AliGraph, §8 of
// the paper) would embed it. Each step samples a fan-out-bounded
// neighbourhood of a seed batch, builds the induced subgraph, and runs
// the compiled vertex-centric program on it — compilation happens once,
// the kernels run on every batch graph.
//
//	go run ./examples/minibatch
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/nn"
	"seastar/internal/sampling"
	"seastar/internal/tensor"
)

const (
	hidden    = 16
	batchSize = 256
	fanOut    = 8
	epochs    = 3
)

func main() {
	degreeSort := flag.Bool("degree-sort", true, "degree-sort each batch subgraph (§6.3.3)")
	flag.Parse()

	// A reddit-like power-law graph at reduced scale.
	ds, err := datasets.Load("reddit", 1.0/256, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base graph: %d vertices, %d edges (avg degree %.0f)\n",
		ds.G.N, ds.G.M, ds.G.AvgDegree())

	// One compiled program serves every batch: a self-plus-neighbours
	// convolution (GraphSAGE-style with sum aggregation).
	b := gir.NewBuilder()
	b.VFeature("h", ds.Feat.Cols())
	W := b.Param("W", ds.Feat.Cols(), ds.NumClasses)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		self := v.Self("h").MatMul(W)
		return v.Nbr("h").MatMul(W).AggSum().Add(self)
	})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := exec.Compile(dag)
	if err != nil {
		log.Fatal(err)
	}

	dev := device.New(device.RTX2080Ti)
	e := nn.NewEngine(dev)
	rng := rand.New(rand.NewSource(1))
	w := e.Param(tensor.XavierUniform(rng, ds.Feat.Cols(), ds.NumClasses), "W")
	opt := nn.NewAdam([]*nn.Variable{w}, 0.01)

	sampler, err := sampling.NewSampler(ds.G, []int{fanOut}, 42)
	if err != nil {
		log.Fatal(err)
	}

	for epoch := 1; epoch <= epochs; epoch++ {
		batches, err := sampler.Batches(batchSize)
		if err != nil {
			log.Fatal(err)
		}
		var lossSum float64
		var correct, total int
		for _, seeds := range batches {
			batch, err := sampler.Sample(seeds)
			if err != nil {
				log.Fatal(err)
			}
			sub := batch.Sub // per-batch degree sort (§6.3.3) unless ablated
			if *degreeSort {
				sub = sub.SortByDegree()
			}
			rt := exec.NewRuntime(e, sub)
			h := e.Input(batch.GatherFeatures(ds.Feat), "h")
			out, err := prog.Apply(rt, map[string]*nn.Variable{"h": h}, nil,
				map[string]*nn.Variable{"W": w})
			if err != nil {
				log.Fatal(err)
			}
			labels := batch.GatherLabels(ds.Labels)
			mask := batch.SeedMask()
			loss := e.CrossEntropyMasked(out, labels, mask)
			e.Backward(loss)
			opt.Step()
			lossSum += float64(loss.Value.At1(0))
			for i := 0; i < batch.SeedCount; i++ {
				total++
				best, bestJ := float32(-1e30), 0
				for j := 0; j < ds.NumClasses; j++ {
					if out.Value.At(i, j) > best {
						best, bestJ = out.Value.At(i, j), j
					}
				}
				if bestJ == labels[i] {
					correct++
				}
			}
			e.EndIteration()
		}
		fmt.Printf("epoch %d: %d batches, avg loss %.4f, seed acc %.3f\n",
			epoch, len(batches), lossSum/float64(len(batches)), float64(correct)/float64(total))
	}
	fmt.Printf("\nsimulated GPU time: %v\n", dev.Elapsed())
}

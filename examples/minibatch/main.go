// Mini-batch example: pipelined neighbour-sampled training with Seastar
// as the training engine, the way sampling-based systems (Euler,
// AliGraph, §8 of the paper) would embed it. The internal/pipeline
// engine overlaps three stages — parallel neighbour sampling, feature
// gather into pooled tensors, and forward/backward/step — behind
// bounded channels, so sampling for batch k+P runs while batch k
// computes. The compiled vertex-centric program is built once and runs
// on every batch subgraph.
//
// Training is bitwise-reproducible: per-batch sampler seeds derive from
// (epoch, batch index, base seed), so -prefetch only changes wall-clock
// behaviour, never the loss curve. The example demonstrates this by
// re-running the same epochs serially and comparing.
//
//	go run ./examples/minibatch
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"

	"seastar/internal/datasets"
	"seastar/internal/pipeline"
	"seastar/internal/train"
)

func main() {
	degreeSort := flag.Bool("degree-sort", true, "degree-sort each batch subgraph (§6.3.3)")
	prefetch := flag.Int("prefetch", 4, "pipeline depth (0 = serial)")
	workers := flag.Int("sample-workers", 2, "parallel sampling workers")
	flag.Parse()

	// A reddit-like power-law graph at reduced scale.
	ds, err := datasets.Load("reddit", 1.0/256, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base graph: %d vertices, %d edges (avg degree %.0f)\n",
		ds.G.N, ds.G.M, ds.G.AvgDegree())

	metrics := pipeline.NewMetrics()
	opts := train.MiniBatchOptions{
		Epochs: 3, BatchSize: 256, FanOut: []int{8},
		Prefetch: *prefetch, SampleWorkers: *workers,
		LR: 0.01, Seed: 42, DegreeSort: *degreeSort, GPU: "2080Ti",
		Metrics: metrics,
		Progress: func(st train.EpochStats) {
			fmt.Printf("epoch %d: %d batches, avg loss %.4f, seed acc %.3f\n",
				st.Epoch+1, st.Batches, st.AvgLoss, st.SeedAcc)
		},
	}
	res, err := train.RunMiniBatch(context.Background(), ds, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final seed-vertex accuracy: %.3f\n\n", res.SeedAcc)

	// The reproducibility contract: a serial re-run produces the exact
	// same per-batch loss curve.
	serialOpts := opts
	serialOpts.Prefetch, serialOpts.Progress, serialOpts.Metrics = 0, nil, nil
	serial, err := train.RunMiniBatch(context.Background(), ds, serialOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial re-run loss curve bitwise identical: %v\n\n",
		reflect.DeepEqual(res.Losses, serial.Losses))

	fmt.Println("pipeline stage metrics:")
	metrics.Write(os.Stdout)
}

#!/bin/sh
# CI pipeline: formatting, static analysis, tests (including the fuzz
# regression corpus and 10s fuzz smoke), then the race-detector suites.
# Fails fast on the cheapest check first.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== fuzz smoke (10s per target) =="
go test -run='^$' -fuzz=FuzzFusionEquivalence -fuzztime=10s ./internal/fusion
go test -run='^$' -fuzz=FuzzEdgeBalanced -fuzztime=10s ./internal/sched

echo "== race: kernels/tensor/sched =="
go test -race ./internal/kernels/... ./internal/tensor/... ./internal/sched/...

echo "== race: serve stress =="
go test -race -count=1 ./internal/serve/...

echo "CI OK"

#!/bin/sh
# CI quality ladder, cheapest check first:
#   gofmt → vet → staticcheck → tests+coverage ratchet → fuzz smoke →
#   race suites → bench-regression gate.
#
# Knobs:
#   FUZZ_TIME     per-target fuzz duration (default 10s; nightly uses 5m)
#   CI_SKIP_RACE  when non-empty, skip the race suites here — set by the
#                 workflow's dedicated parallel `race` job, which owns them
set -eu

cd "$(dirname "$0")/.."

FUZZ_TIME=${FUZZ_TIME:-10s}
CI_SKIP_RACE=${CI_SKIP_RACE:-}
STATICCHECK_VERSION=${STATICCHECK_VERSION:-2024.1.1}

echo "== gofmt =="
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck ($STATICCHECK_VERSION) =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
elif go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" -version >/dev/null 2>&1; then
	go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./...
else
	echo "staticcheck unavailable (no binary, module fetch failed — offline?); skipping"
fi

echo "== go test (with coverage) =="
go test -coverprofile=cover.out ./...

echo "== coverage ratchet =="
cov=$(go tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
floor=$(cat scripts/coverage_floor.txt)
awk -v c="$cov" -v f="$floor" 'BEGIN {
	if (c + 0 < f + 0) {
		printf "coverage %.1f%% is below the floor %.1f%% (scripts/coverage_floor.txt)\n", c, f
		exit 1
	}
	printf "coverage %.1f%% (floor %.1f%%)\n", c, f
}'

echo "== fuzz smoke ($FUZZ_TIME per target) =="
go test -run='^$' -fuzz=FuzzFusionEquivalence -fuzztime="$FUZZ_TIME" ./internal/fusion
go test -run='^$' -fuzz=FuzzEdgeBalanced -fuzztime="$FUZZ_TIME" ./internal/sched
go test -run='^$' -fuzz=FuzzDeltaEquivalence -fuzztime="$FUZZ_TIME" ./internal/serve
go test -run='^$' -fuzz=FuzzPartitionInvariants -fuzztime="$FUZZ_TIME" ./internal/part
go test -run='^$' -fuzz=FuzzStoreEquivalence -fuzztime="$FUZZ_TIME" ./internal/store

if [ -n "$CI_SKIP_RACE" ]; then
	echo "== race suites skipped (CI_SKIP_RACE set; the workflow race job runs them) =="
else
	echo "== race: kernels/tensor/sched =="
	go test -race ./internal/kernels/... ./internal/tensor/... ./internal/sched/...

	echo "== race: serve stress (incl. concurrent delta+infer soak) =="
	go test -race -count=1 ./internal/serve/...

	echo "== race: pipeline/train/sampling/store =="
	go test -race -count=1 ./internal/pipeline/... ./internal/train/... ./internal/sampling/... ./internal/store/...

	echo "== race: sharded serving (coordinator + workers, killed-worker fault) =="
	go test -race -count=1 -run 'TestRaceSoak|TestKilledWorker|TestWorkerRestartInPlace|TestEndToEndBitwise' ./internal/shard
fi

echo "== doc lint (exported symbols need doc comments) =="
go run ./scripts/doclint ./internal/gir ./internal/fusion ./internal/kernels ./internal/serve ./internal/obs ./internal/exec ./internal/store

echo "== doc lint (flag docs in docs/operations.md match the binaries) =="
go run ./scripts/doclint -flags docs/operations.md ./cmd/seastar-train ./cmd/seastar-serve ./cmd/seastar-bench ./cmd/seastar-inspect ./cmd/seastar-convert

echo "== bench regression gate (incl. obs-overhead ceiling + delta + shard + oocore evidence) =="
go run ./scripts -kernels BENCH_kernels.json -pipeline BENCH_pipeline.json -gemm BENCH_gemm.json -fused BENCH_fused.json -serve BENCH_serve.json -delta BENCH_delta.json -shard BENCH_shard.json -oocore BENCH_oocore.json

echo "CI OK"

#!/bin/sh
# Out-of-core bench smoke: run the oocore experiment with the process's
# memory bounded below the store size, so the mmap path actually takes
# major faults and the prefetcher has something to hide.
#
# The bound is best-effort, in order of preference:
#   1. cgroup v2: a throwaway child cgroup with memory.max set (needs a
#      writable, delegated cgroup2 mount — typical on dev boxes and
#      GitHub runners, absent in unprivileged containers).
#   2. No knob available: run uncapped. The warm-cache measurement still
#      proves the mmap path's overhead, and the committed capped-cache
#      model (gated by bench_check -oocore-max) covers the cold case.
#
# Knobs:
#   OOCORE_CAP_MB   memory.max for the capped run (default 256 — well
#                   under the ~68 MB store + Go heap working set only on
#                   purpose-built small hosts; lower to force faulting)
#   OOCORE_OUT      output JSON (default /tmp/BENCH_oocore_smoke.json;
#                   NEVER the committed BENCH_oocore.json)
set -eu

cd "$(dirname "$0")/.."

OOCORE_CAP_MB=${OOCORE_CAP_MB:-256}
OOCORE_OUT=${OOCORE_OUT:-/tmp/BENCH_oocore_smoke.json}

go build -o /tmp/seastar-bench-oocore ./cmd/seastar-bench

run_capped() {
	cg=""
	base=""
	# Find a cgroup2 mount we can create a child in.
	for cand in /sys/fs/cgroup; do
		[ -f "$cand/cgroup.controllers" ] || continue
		grep -qw memory "$cand/cgroup.controllers" 2>/dev/null || continue
		base=$cand
		break
	done
	[ -n "$base" ] || return 1
	cg="$base/seastar-oocore-$$"
	mkdir "$cg" 2>/dev/null || return 1
	# Cleanup even on failure; rmdir only works once empty of procs.
	trap 'rmdir "$cg" 2>/dev/null || true' EXIT
	if ! echo "$((OOCORE_CAP_MB * 1024 * 1024))" > "$cg/memory.max" 2>/dev/null; then
		rmdir "$cg" 2>/dev/null || true
		return 1
	fi
	echo "oocore smoke: capped at ${OOCORE_CAP_MB} MB via $cg"
	# Place a subshell into the cgroup, then exec the bench inside it.
	sh -c "echo \$\$ > '$cg/cgroup.procs' && exec /tmp/seastar-bench-oocore \
		-exp oocore -oocore-out '$OOCORE_OUT' \
		-oocore-cap $((OOCORE_CAP_MB * 1024 * 1024))" || return 1
	return 0
}

if run_capped; then
	echo "oocore smoke: capped run OK -> $OOCORE_OUT"
else
	echo "oocore smoke: no usable cgroup v2 memory controller; uncapped fallback"
	/tmp/seastar-bench-oocore -exp oocore -oocore-out "$OOCORE_OUT"
	echo "oocore smoke: uncapped run OK -> $OOCORE_OUT (capped case covered by the model gate)"
fi

# Gate the smoke output with the same caps as the committed evidence.
go run ./scripts -kernels "" -pipeline "" -gemm "" -fused "" -serve "" \
	-delta "" -shard "" -divergence-warn -1 -oocore "$OOCORE_OUT"

// Command bench_check is the CI bench-regression gate: it re-runs the
// host-independent benchmark models and fails if they regress against
// the committed BENCH_kernels.json / BENCH_pipeline.json baselines.
//
// The kernels gate is measured, not modeled: it re-times the fused GAT
// kernel in-process at 1 and P scheduler workers and requires the
// parallel wall time to actually beat serial (engaged only when the
// host has the cores to back P workers — on smaller runners it reports
// and skips). The pipeline and gemm gates compare *modeled* numbers
// (the pipeline overlap model and the gemm arithmetic-intensity model),
// which are deterministic up to relative stage costs, so they are
// meaningful on CI hosts of any core count.
//
// The fused gate re-times the closure-compiled edge loops against the
// interpreter in the same process: both sides of the ratio move with
// host speed, so the specialization speedup itself is comparable
// against the committed BENCH_fused.json baseline. Bitwise equality of
// the two paths is a hard gate with no tolerance.
//
//	go run ./scripts -kernels BENCH_kernels.json -pipeline BENCH_pipeline.json -gemm BENCH_gemm.json -fused BENCH_fused.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"seastar/internal/bench"
)

func main() {
	kernelsPath := flag.String("kernels", "BENCH_kernels.json", "committed kernels baseline (empty to skip)")
	pipelinePath := flag.String("pipeline", "BENCH_pipeline.json", "committed pipeline baseline (empty to skip)")
	gemmPath := flag.String("gemm", "BENCH_gemm.json", "committed gemm baseline (empty to skip)")
	fusedPath := flag.String("fused", "BENCH_fused.json", "committed fused (closure-compiler) baseline (empty to skip)")
	kernelsTol := flag.Float64("kernels-tol", 0.10, "max allowed fractional regression of the kernels makespan speedup")
	pipelineTol := flag.Float64("pipeline-tol", 0.25, "max allowed fractional regression of the pipeline overlap speedup (wider: its inputs are measured)")
	gemmTol := flag.Float64("gemm-tol", 0.15, "max allowed fractional regression of the modeled gemm speedup")
	fusedTol := flag.Float64("fused-tol", 0.15, "max allowed fractional regression of the measured specialization speedup")
	fusedGatMin := flag.Float64("fused-gat-min", 3.0, "min committed single-worker speedup of the GAT aggregate kernel (non-positive to skip)")
	parallelMin := flag.Float64("parallel-min", 1.15, "min measured kernel wall-time speedup at 4 workers vs 1 (gate skipped when the host has <4 cores; negative to skip always)")
	obsMax := flag.Float64("obs-max", 0.02, "max modeled obs-disabled overhead on the kernels benchmark (negative to skip)")
	flag.Parse()

	failed := false
	if *kernelsPath != "" {
		if err := checkKernels(*kernelsPath, *kernelsTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: kernels:", err)
			failed = true
		}
	}
	if *parallelMin >= 0 {
		if err := checkKernelsParallel(*parallelMin); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: kernels-parallel:", err)
			failed = true
		}
	}
	if *fusedPath != "" {
		if err := checkFused(*fusedPath, *fusedTol, *fusedGatMin); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: fused:", err)
			failed = true
		}
	}
	if *pipelinePath != "" {
		if err := checkPipeline(*pipelinePath, *pipelineTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: pipeline:", err)
			failed = true
		}
	}
	if *gemmPath != "" {
		if err := checkGemm(*gemmPath, *gemmTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: gemm:", err)
			failed = true
		}
	}
	if *obsMax >= 0 {
		if err := checkObs(*obsMax); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: obs:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("bench_check OK")
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// checkKernels replays the deterministic makespan model at the
// baseline's graph size and worker count; the edge-balanced-vs-uniform
// speedup must not fall more than tol below the committed value.
func checkKernels(path string, tol float64) error {
	var base bench.KernelsReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if len(base.Model) == 0 {
		return fmt.Errorf("%s has no makespan_model entries", path)
	}
	want := base.Model[0]

	cfg := bench.DefaultKernelsConfig()
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	cfg.Workers = want.Workers
	cfg.ModelOnly = true
	rep, err := bench.KernelsBench(cfg)
	if err != nil {
		return err
	}
	got := rep.Model[0]

	floor := want.Speedup * (1 - tol)
	fmt.Printf("kernels: modeled makespan speedup %.3fx (baseline %.3fx, floor %.3fx)\n",
		got.Speedup, want.Speedup, floor)
	if got.Speedup < floor {
		return fmt.Errorf("makespan speedup regressed: %.3fx < floor %.3fx (baseline %.3fx, tol %.0f%%)",
			got.Speedup, floor, want.Speedup, tol*100)
	}
	return nil
}

// checkKernelsParallel is the measured half of the kernels gate: the
// fused GAT kernel timed in-process at 1 and 4 scheduler workers. Wall
// time must drop by at least `min` when the host has ≥4 cores; on
// smaller runners real overlap is physically impossible, so the gate
// reports the core count and passes. No baseline file: both timings
// come from the same process, so the ratio is meaningful on any host
// fast or slow.
func checkKernelsParallel(min float64) error {
	const procs = 4
	if runtime.NumCPU() < procs {
		fmt.Printf("kernels-parallel: skipped (host has %d cores, gate needs %d)\n",
			runtime.NumCPU(), procs)
		return nil
	}
	cfg := bench.DefaultKernelsConfig()
	cfg.Vertices = 20000
	cfg.MaxProcsList = []int{1, procs}
	rep, err := bench.KernelsBench(cfg)
	if err != nil {
		return err
	}
	var serialNs, parallelNs int64
	for _, m := range rep.Measured {
		if m.Name != "edge_balanced" {
			continue
		}
		switch m.MaxProcs {
		case 1:
			serialNs = m.NsPerOp
		case procs:
			parallelNs = m.NsPerOp
		}
	}
	if serialNs <= 0 || parallelNs <= 0 {
		return fmt.Errorf("missing edge_balanced measurements at 1/%d workers", procs)
	}
	speedup := float64(serialNs) / float64(parallelNs)
	fmt.Printf("kernels-parallel: measured wall speedup %.2fx at %d workers (floor %.2fx)\n",
		speedup, procs, min)
	if speedup < min {
		return fmt.Errorf("measured parallel wall speedup %.2fx at %d workers below floor %.2fx",
			speedup, procs, min)
	}
	return nil
}

// checkFused re-times the closure-compiled edge loops against the
// interpreter in this process and gates on (a) bitwise equality of the
// two paths — hard, no tolerance — (b) each fused kernel's single-
// worker speedup not falling more than tol below the committed
// baseline, and (c) the committed GAT aggregate kernel (the
// scaled-gather unit) clearing gatMin at one worker — the closure
// compiler's headline number. Both sides of each re-measured ratio come
// from this process, so the comparison holds across host speeds; the
// gatMin gate reads the committed full-size report, where the ratio is
// not distorted by a cache-resident small graph.
func checkFused(path string, tol, gatMin float64) error {
	var base bench.FusedReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if len(base.Rows) == 0 {
		return fmt.Errorf("%s has no rows", path)
	}
	type key struct {
		pattern string
		unit    int
	}
	baseline := map[key]float64{}
	gatAggSpeedup := 0.0
	for _, r := range base.Rows {
		if !r.BitwiseEqual {
			return fmt.Errorf("baseline %s row %s unit %d @%d records a bitwise mismatch — the committed report is broken",
				path, r.Pattern, r.Unit, r.MaxProcs)
		}
		if r.MaxProcs == 1 {
			baseline[key{r.Pattern, r.Unit}] = r.Speedup
			if r.Pattern == "gat" && strings.Contains(r.Spec, "gather") {
				gatAggSpeedup = r.Speedup
			}
		}
	}
	if gatMin > 0 {
		if gatAggSpeedup == 0 {
			return fmt.Errorf("baseline %s has no single-worker GAT aggregate (gather) row", path)
		}
		fmt.Printf("fused: committed GAT aggregate kernel speedup %.2fx (floor %.2fx)\n",
			gatAggSpeedup, gatMin)
		if gatAggSpeedup < gatMin {
			return fmt.Errorf("committed GAT aggregate kernel speedup %.2fx below floor %.2fx — regenerate or fix the specializer",
				gatAggSpeedup, gatMin)
		}
	}

	// Re-measure at the baseline's own graph shape: the interp/spec
	// ratio shifts with cache residency, so a smaller graph would gate
	// apples against oranges. Single worker keeps the run bounded.
	cfg := bench.DefaultFusedConfig()
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	cfg.MaxProcsList = []int{1}
	rep, err := bench.FusedBench(cfg)
	if err != nil {
		return err
	}
	for _, r := range rep.Rows {
		if !r.BitwiseEqual {
			return fmt.Errorf("%s unit %d: specialized and interpreted outputs diverged", r.Pattern, r.Unit)
		}
		want, ok := baseline[key{r.Pattern, r.Unit}]
		if !ok {
			continue
		}
		floor := want * (1 - tol)
		fmt.Printf("fused: %s unit %d (%s) speedup %.2fx (baseline %.2fx, floor %.2fx), bitwise equal\n",
			r.Pattern, r.Unit, r.Spec, r.Speedup, want, floor)
		if r.Speedup < floor {
			return fmt.Errorf("%s unit %d: specialization speedup regressed: %.2fx < floor %.2fx (baseline %.2fx, tol %.0f%%)",
				r.Pattern, r.Unit, r.Speedup, floor, want, tol*100)
		}
	}
	return nil
}

// checkGemm replays the deterministic arithmetic-intensity model and the
// feature-tile planner at the baseline's shapes: the modeled
// blocked-vs-naive speedup must not fall more than tol below the
// committed value at any dim, and the tile plans must match exactly
// (the planner is a pure function of the kernel shape).
func checkGemm(path string, tol float64) error {
	var base bench.GemmReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if len(base.Model) == 0 || len(base.AggPlan) == 0 {
		return fmt.Errorf("%s has no ai_model/agg_plan entries", path)
	}

	cfg := bench.DefaultGemmConfig()
	cfg.ModelOnly = true
	var dims []int
	for _, mo := range base.Model {
		dims = append(dims, mo.Dim)
	}
	cfg.Dims = dims
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	rep, err := bench.GemmBench(cfg)
	if err != nil {
		return err
	}

	for i, want := range base.Model {
		got := bench.GemmModel(base.Rows, want.Dim, want.Dim)
		floor := want.ModelSpeedup * (1 - tol)
		if got.ModelSpeedup < floor {
			return fmt.Errorf("dim %d: modeled speedup regressed: %.3fx < floor %.3fx (baseline %.3fx, tol %.0f%%)",
				want.Dim, got.ModelSpeedup, floor, want.ModelSpeedup, tol*100)
		}
		if i < len(rep.AggPlan) && i < len(base.AggPlan) && rep.AggPlan[i] != base.AggPlan[i] {
			return fmt.Errorf("dim %d: tile plan drifted: now %+v, baseline %+v — regenerate BENCH_gemm.json",
				want.Dim, rep.AggPlan[i], base.AggPlan[i])
		}
	}
	last := base.Model[len(base.Model)-1]
	got := bench.GemmModel(base.Rows, last.Dim, last.Dim)
	fmt.Printf("gemm: modeled speedup at dim %d %.3fx (baseline %.3fx), %d tile plans match\n",
		last.Dim, got.ModelSpeedup, last.ModelSpeedup, len(base.AggPlan))
	return nil
}

// checkObs measures the tracing layer's disabled cost against the
// kernels benchmark on this host and fails if the modeled overhead
// (spans-per-launch × disabled-span ns ÷ kernel ns/launch) exceeds max.
// No baseline file: both terms are measured in the same process, so the
// ratio is meaningful on any runner.
func checkObs(max float64) error {
	cfg := bench.DefaultKernelsConfig()
	cfg.Vertices = 20000 // smaller graph → worst case for relative overhead
	rep, err := bench.ObsOverheadBench(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("obs: modeled disabled overhead %.4f%% (span %.1f ns × %d ÷ launch %d ns; ceiling %.1f%%), enabled measured %.2f%%\n",
		rep.ModeledOverheadOff*100, rep.DisabledSpanNs, rep.SpansPerLaunch,
		rep.KernelNsPerLaunch, max*100, rep.MeasuredOverheadOn*100)
	if rep.ModeledOverheadOff > max {
		return fmt.Errorf("disabled tracing overhead %.4f%% exceeds ceiling %.1f%%",
			rep.ModeledOverheadOff*100, max*100)
	}
	return nil
}

// checkPipeline re-runs the pipeline benchmark at the baseline's shape
// and gates on (a) bitwise-equal loss curves — a hard reproducibility
// invariant — and (b) the modeled overlap speedup not regressing more
// than tol below the committed value.
func checkPipeline(path string, tol float64) error {
	var base bench.PipelineReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	want := base.OverlapModel
	if want.Speedup <= 0 {
		return fmt.Errorf("%s has no overlap_model speedup", path)
	}

	cfg := bench.DefaultPipelineBenchConfig()
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	cfg.BatchSize = base.BatchSize
	cfg.FanOut = base.FanOut
	cfg.Prefetch = base.Prefetch
	cfg.SampleWorkers = base.SampleWorkers
	rep, err := bench.PipelineBench(cfg)
	if err != nil {
		return err
	}

	if !rep.BitwiseEqual {
		return fmt.Errorf("pipelined and serial loss curves diverged — reproducibility broken")
	}
	got := rep.OverlapModel
	floor := want.Speedup * (1 - tol)
	fmt.Printf("pipeline: modeled overlap speedup %.3fx (baseline %.3fx, floor %.3fx), bitwise equal\n",
		got.Speedup, want.Speedup, floor)
	if got.Speedup < floor {
		return fmt.Errorf("overlap speedup regressed: %.3fx < floor %.3fx (baseline %.3fx, tol %.0f%%)",
			got.Speedup, floor, want.Speedup, tol*100)
	}
	return nil
}

// Command bench_check is the CI bench-regression gate: it re-runs the
// host-independent benchmark models and fails if they regress against
// the committed BENCH_kernels.json / BENCH_pipeline.json baselines.
//
// Both gates compare *modeled* numbers (the kernels makespan model and
// the pipeline overlap model), which are deterministic for kernels and
// near-deterministic for the pipeline (its inputs are measured stage
// durations, but the speedup ratio depends only on their relative
// sizes), so the gate is meaningful on CI hosts of any core count.
//
// The gemm gate replays the arithmetic-intensity model and the feature-
// tile planner, both pure functions of the committed shapes.
//
//	go run ./scripts -kernels BENCH_kernels.json -pipeline BENCH_pipeline.json -gemm BENCH_gemm.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"seastar/internal/bench"
)

func main() {
	kernelsPath := flag.String("kernels", "BENCH_kernels.json", "committed kernels baseline (empty to skip)")
	pipelinePath := flag.String("pipeline", "BENCH_pipeline.json", "committed pipeline baseline (empty to skip)")
	gemmPath := flag.String("gemm", "BENCH_gemm.json", "committed gemm baseline (empty to skip)")
	kernelsTol := flag.Float64("kernels-tol", 0.10, "max allowed fractional regression of the kernels makespan speedup")
	pipelineTol := flag.Float64("pipeline-tol", 0.25, "max allowed fractional regression of the pipeline overlap speedup (wider: its inputs are measured)")
	gemmTol := flag.Float64("gemm-tol", 0.15, "max allowed fractional regression of the modeled gemm speedup")
	obsMax := flag.Float64("obs-max", 0.02, "max modeled obs-disabled overhead on the kernels benchmark (negative to skip)")
	flag.Parse()

	failed := false
	if *kernelsPath != "" {
		if err := checkKernels(*kernelsPath, *kernelsTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: kernels:", err)
			failed = true
		}
	}
	if *pipelinePath != "" {
		if err := checkPipeline(*pipelinePath, *pipelineTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: pipeline:", err)
			failed = true
		}
	}
	if *gemmPath != "" {
		if err := checkGemm(*gemmPath, *gemmTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: gemm:", err)
			failed = true
		}
	}
	if *obsMax >= 0 {
		if err := checkObs(*obsMax); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: obs:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("bench_check OK")
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// checkKernels replays the deterministic makespan model at the
// baseline's graph size and worker count; the edge-balanced-vs-uniform
// speedup must not fall more than tol below the committed value.
func checkKernels(path string, tol float64) error {
	var base bench.KernelsReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if len(base.Model) == 0 {
		return fmt.Errorf("%s has no makespan_model entries", path)
	}
	want := base.Model[0]

	cfg := bench.DefaultKernelsConfig()
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	cfg.Workers = want.Workers
	cfg.ModelOnly = true
	rep, err := bench.KernelsBench(cfg)
	if err != nil {
		return err
	}
	got := rep.Model[0]

	floor := want.Speedup * (1 - tol)
	fmt.Printf("kernels: modeled makespan speedup %.3fx (baseline %.3fx, floor %.3fx)\n",
		got.Speedup, want.Speedup, floor)
	if got.Speedup < floor {
		return fmt.Errorf("makespan speedup regressed: %.3fx < floor %.3fx (baseline %.3fx, tol %.0f%%)",
			got.Speedup, floor, want.Speedup, tol*100)
	}
	return nil
}

// checkGemm replays the deterministic arithmetic-intensity model and the
// feature-tile planner at the baseline's shapes: the modeled
// blocked-vs-naive speedup must not fall more than tol below the
// committed value at any dim, and the tile plans must match exactly
// (the planner is a pure function of the kernel shape).
func checkGemm(path string, tol float64) error {
	var base bench.GemmReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if len(base.Model) == 0 || len(base.AggPlan) == 0 {
		return fmt.Errorf("%s has no ai_model/agg_plan entries", path)
	}

	cfg := bench.DefaultGemmConfig()
	cfg.ModelOnly = true
	var dims []int
	for _, mo := range base.Model {
		dims = append(dims, mo.Dim)
	}
	cfg.Dims = dims
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	rep, err := bench.GemmBench(cfg)
	if err != nil {
		return err
	}

	for i, want := range base.Model {
		got := bench.GemmModel(base.Rows, want.Dim, want.Dim)
		floor := want.ModelSpeedup * (1 - tol)
		if got.ModelSpeedup < floor {
			return fmt.Errorf("dim %d: modeled speedup regressed: %.3fx < floor %.3fx (baseline %.3fx, tol %.0f%%)",
				want.Dim, got.ModelSpeedup, floor, want.ModelSpeedup, tol*100)
		}
		if i < len(rep.AggPlan) && i < len(base.AggPlan) && rep.AggPlan[i] != base.AggPlan[i] {
			return fmt.Errorf("dim %d: tile plan drifted: now %+v, baseline %+v — regenerate BENCH_gemm.json",
				want.Dim, rep.AggPlan[i], base.AggPlan[i])
		}
	}
	last := base.Model[len(base.Model)-1]
	got := bench.GemmModel(base.Rows, last.Dim, last.Dim)
	fmt.Printf("gemm: modeled speedup at dim %d %.3fx (baseline %.3fx), %d tile plans match\n",
		last.Dim, got.ModelSpeedup, last.ModelSpeedup, len(base.AggPlan))
	return nil
}

// checkObs measures the tracing layer's disabled cost against the
// kernels benchmark on this host and fails if the modeled overhead
// (spans-per-launch × disabled-span ns ÷ kernel ns/launch) exceeds max.
// No baseline file: both terms are measured in the same process, so the
// ratio is meaningful on any runner.
func checkObs(max float64) error {
	cfg := bench.DefaultKernelsConfig()
	cfg.Vertices = 20000 // smaller graph → worst case for relative overhead
	rep, err := bench.ObsOverheadBench(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("obs: modeled disabled overhead %.4f%% (span %.1f ns × %d ÷ launch %d ns; ceiling %.1f%%), enabled measured %.2f%%\n",
		rep.ModeledOverheadOff*100, rep.DisabledSpanNs, rep.SpansPerLaunch,
		rep.KernelNsPerLaunch, max*100, rep.MeasuredOverheadOn*100)
	if rep.ModeledOverheadOff > max {
		return fmt.Errorf("disabled tracing overhead %.4f%% exceeds ceiling %.1f%%",
			rep.ModeledOverheadOff*100, max*100)
	}
	return nil
}

// checkPipeline re-runs the pipeline benchmark at the baseline's shape
// and gates on (a) bitwise-equal loss curves — a hard reproducibility
// invariant — and (b) the modeled overlap speedup not regressing more
// than tol below the committed value.
func checkPipeline(path string, tol float64) error {
	var base bench.PipelineReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	want := base.OverlapModel
	if want.Speedup <= 0 {
		return fmt.Errorf("%s has no overlap_model speedup", path)
	}

	cfg := bench.DefaultPipelineBenchConfig()
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	cfg.BatchSize = base.BatchSize
	cfg.FanOut = base.FanOut
	cfg.Prefetch = base.Prefetch
	cfg.SampleWorkers = base.SampleWorkers
	rep, err := bench.PipelineBench(cfg)
	if err != nil {
		return err
	}

	if !rep.BitwiseEqual {
		return fmt.Errorf("pipelined and serial loss curves diverged — reproducibility broken")
	}
	got := rep.OverlapModel
	floor := want.Speedup * (1 - tol)
	fmt.Printf("pipeline: modeled overlap speedup %.3fx (baseline %.3fx, floor %.3fx), bitwise equal\n",
		got.Speedup, want.Speedup, floor)
	if got.Speedup < floor {
		return fmt.Errorf("overlap speedup regressed: %.3fx < floor %.3fx (baseline %.3fx, tol %.0f%%)",
			got.Speedup, floor, want.Speedup, tol*100)
	}
	return nil
}

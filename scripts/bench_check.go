// Command bench_check is the CI bench-regression gate: it re-runs the
// host-independent benchmark models and fails if they regress against
// the committed BENCH_kernels.json / BENCH_pipeline.json baselines.
//
// The kernels gate is measured, not modeled: it re-times the fused GAT
// kernel in-process at 1 and P scheduler workers and requires the
// parallel wall time to actually beat serial (engaged only when the
// host has the cores to back P workers — on smaller runners it reports
// and skips). The pipeline and gemm gates compare *modeled* numbers
// (the pipeline overlap model and the gemm arithmetic-intensity model),
// which are deterministic up to relative stage costs, so they are
// meaningful on CI hosts of any core count.
//
// The fused gate re-times the closure-compiled edge loops against the
// interpreter in the same process: both sides of the ratio move with
// host speed, so the specialization speedup itself is comparable
// against the committed BENCH_fused.json baseline. Bitwise equality of
// the two paths is a hard gate with no tolerance.
//
// The adaptive gate reads the committed BENCH_serve.json: the serving
// engine's measured micro-batch re-planner must have beaten the static
// cap by the floor, with every answer bitwise equal to the serial
// forward. It is committed-only evidence (the experiment saturates a
// 100k-vertex graph for over a minute), refreshed by the nightly bench
// job rather than per-push CI.
//
// The delta gate reads the committed BENCH_delta.json the same way: the
// incremental k-hop recompute must have beaten a full forward by the
// floor at under 1% touched vertices, with every child bitwise-identical
// to a rebuild from scratch.
//
//	go run ./scripts -kernels BENCH_kernels.json -pipeline BENCH_pipeline.json -gemm BENCH_gemm.json -fused BENCH_fused.json -serve BENCH_serve.json -delta BENCH_delta.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"

	"seastar/internal/bench"
	"seastar/internal/graph"
	"seastar/internal/part"
)

func main() {
	kernelsPath := flag.String("kernels", "BENCH_kernels.json", "committed kernels baseline (empty to skip)")
	pipelinePath := flag.String("pipeline", "BENCH_pipeline.json", "committed pipeline baseline (empty to skip)")
	gemmPath := flag.String("gemm", "BENCH_gemm.json", "committed gemm baseline (empty to skip)")
	fusedPath := flag.String("fused", "BENCH_fused.json", "committed fused (closure-compiler) baseline (empty to skip)")
	servePath := flag.String("serve", "BENCH_serve.json", "committed serve adaptive-batching baseline (empty to skip)")
	deltaPath := flag.String("delta", "BENCH_delta.json", "committed graph-delta incremental-recompute baseline (empty to skip)")
	shardPath := flag.String("shard", "BENCH_shard.json", "committed sharded-serving baseline (empty to skip)")
	oocorePath := flag.String("oocore", "BENCH_oocore.json", "committed out-of-core store baseline (empty to skip)")
	kernelsTol := flag.Float64("kernels-tol", 0.10, "max allowed fractional regression of the kernels makespan speedup")
	pipelineTol := flag.Float64("pipeline-tol", 0.25, "max allowed fractional regression of the pipeline overlap speedup (wider: its inputs are measured)")
	gemmTol := flag.Float64("gemm-tol", 0.15, "max allowed fractional regression of the modeled gemm speedup")
	fusedTol := flag.Float64("fused-tol", 0.15, "max allowed fractional regression of the measured specialization speedup")
	fusedGatMin := flag.Float64("fused-gat-min", 3.0, "min committed single-worker speedup of the GAT aggregate kernel (non-positive to skip)")
	parallelMin := flag.Float64("parallel-min", 1.15, "min measured kernel wall-time speedup at 4 workers vs 1 (gate skipped when the host has <4 cores; negative to skip always)")
	obsMax := flag.Float64("obs-max", 0.02, "max modeled obs-disabled overhead on the kernels benchmark (negative to skip)")
	adaptiveMin := flag.Float64("adaptive-min", 1.10, "min committed adaptive re-planning speedup in the serve baseline (non-positive to skip)")
	deltaMin := flag.Float64("delta-min", 2.0, "min committed incremental-vs-full-forward speedup in the delta baseline (non-positive to skip)")
	deltaTouchedMax := flag.Float64("delta-touched-max", 0.01, "max per-delta touched-vertex fraction the delta baseline may claim the speedup at")
	shardCutMax := flag.Float64("shard-cut-max", 0.35, "max committed edge-cut ratio (dedup mirror flows / edges) in the shard baseline (non-positive to skip)")
	oocoreMax := flag.Float64("oocore-max", 1.30, "max committed store-vs-in-memory epoch-time ratio, measured and modeled (non-positive to skip)")
	shardLatencyMax := flag.Float64("shard-latency-max", 2.0, "max committed interior-vertex latency ratio (sharded / single-shard) in the shard baseline")
	divergenceWarn := flag.Float64("divergence-warn", 0.25, "fractional model-vs-measured divergence that triggers a WARN line (prints only, never fails; negative to skip)")
	flag.Parse()

	failed := false
	if *kernelsPath != "" {
		if err := checkKernels(*kernelsPath, *kernelsTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: kernels:", err)
			failed = true
		}
	}
	if *parallelMin >= 0 {
		if err := checkKernelsParallel(*parallelMin); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: kernels-parallel:", err)
			failed = true
		}
	}
	if *fusedPath != "" {
		if err := checkFused(*fusedPath, *fusedTol, *fusedGatMin); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: fused:", err)
			failed = true
		}
	}
	if *pipelinePath != "" {
		if err := checkPipeline(*pipelinePath, *pipelineTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: pipeline:", err)
			failed = true
		}
	}
	if *gemmPath != "" {
		if err := checkGemm(*gemmPath, *gemmTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: gemm:", err)
			failed = true
		}
	}
	if *obsMax >= 0 {
		if err := checkObs(*obsMax); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: obs:", err)
			failed = true
		}
	}
	if *servePath != "" && *adaptiveMin > 0 {
		if err := checkAdaptive(*servePath, *adaptiveMin); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: adaptive:", err)
			failed = true
		}
	}
	if *deltaPath != "" && *deltaMin > 0 {
		if err := checkDelta(*deltaPath, *deltaMin, *deltaTouchedMax); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: delta:", err)
			failed = true
		}
	}
	if *shardPath != "" && *shardCutMax > 0 {
		if err := checkShard(*shardPath, *shardCutMax, *shardLatencyMax); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: shard:", err)
			failed = true
		}
	}
	if *oocorePath != "" && *oocoreMax > 0 {
		if err := checkOOCore(*oocorePath, *oocoreMax); err != nil {
			fmt.Fprintln(os.Stderr, "bench_check: oocore:", err)
			failed = true
		}
	}
	if *divergenceWarn >= 0 {
		reportDivergence(*kernelsPath, *pipelinePath, *divergenceWarn)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("bench_check OK")
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// checkKernels replays the deterministic makespan model at the
// baseline's graph size and worker count; the edge-balanced-vs-uniform
// speedup must not fall more than tol below the committed value.
func checkKernels(path string, tol float64) error {
	var base bench.KernelsReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if len(base.Model) == 0 {
		return fmt.Errorf("%s has no makespan_model entries", path)
	}
	want := base.Model[0]

	cfg := bench.DefaultKernelsConfig()
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	cfg.Workers = want.Workers
	cfg.ModelOnly = true
	rep, err := bench.KernelsBench(cfg)
	if err != nil {
		return err
	}
	got := rep.Model[0]

	floor := want.Speedup * (1 - tol)
	fmt.Printf("kernels: modeled makespan speedup %.3fx (baseline %.3fx, floor %.3fx)\n",
		got.Speedup, want.Speedup, floor)
	if got.Speedup < floor {
		return fmt.Errorf("makespan speedup regressed: %.3fx < floor %.3fx (baseline %.3fx, tol %.0f%%)",
			got.Speedup, floor, want.Speedup, tol*100)
	}
	return nil
}

// checkKernelsParallel is the measured half of the kernels gate: the
// fused GAT kernel timed in-process at 1 and 4 scheduler workers. Wall
// time must drop by at least `min` when the host has ≥4 cores; on
// smaller runners real overlap is physically impossible, so the gate
// reports the core count and passes. No baseline file: both timings
// come from the same process, so the ratio is meaningful on any host
// fast or slow.
func checkKernelsParallel(min float64) error {
	const procs = 4
	if runtime.NumCPU() < procs {
		fmt.Printf("kernels-parallel: skipped (host has %d cores, gate needs %d)\n",
			runtime.NumCPU(), procs)
		return nil
	}
	cfg := bench.DefaultKernelsConfig()
	cfg.Vertices = 20000
	cfg.MaxProcsList = []int{1, procs}
	rep, err := bench.KernelsBench(cfg)
	if err != nil {
		return err
	}
	var serialNs, parallelNs int64
	for _, m := range rep.Measured {
		if m.Name != "edge_balanced" {
			continue
		}
		switch m.MaxProcs {
		case 1:
			serialNs = m.NsPerOp
		case procs:
			parallelNs = m.NsPerOp
		}
	}
	if serialNs <= 0 || parallelNs <= 0 {
		return fmt.Errorf("missing edge_balanced measurements at 1/%d workers", procs)
	}
	speedup := float64(serialNs) / float64(parallelNs)
	fmt.Printf("kernels-parallel: measured wall speedup %.2fx at %d workers (floor %.2fx)\n",
		speedup, procs, min)
	if speedup < min {
		return fmt.Errorf("measured parallel wall speedup %.2fx at %d workers below floor %.2fx",
			speedup, procs, min)
	}
	return nil
}

// checkFused re-times the closure-compiled edge loops against the
// interpreter in this process and gates on (a) bitwise equality of the
// two paths — hard, no tolerance — (b) each fused kernel's single-
// worker speedup not falling more than tol below the committed
// baseline, and (c) the committed GAT aggregate kernel (the
// scaled-gather unit) clearing gatMin at one worker — the closure
// compiler's headline number. Both sides of each re-measured ratio come
// from this process, so the comparison holds across host speeds; the
// gatMin gate reads the committed full-size report, where the ratio is
// not distorted by a cache-resident small graph.
func checkFused(path string, tol, gatMin float64) error {
	var base bench.FusedReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if len(base.Rows) == 0 {
		return fmt.Errorf("%s has no rows", path)
	}
	type key struct {
		pattern string
		unit    int
	}
	baseline := map[key]float64{}
	gatAggSpeedup := 0.0
	for _, r := range base.Rows {
		if !r.BitwiseEqual {
			return fmt.Errorf("baseline %s row %s unit %d @%d records a bitwise mismatch — the committed report is broken",
				path, r.Pattern, r.Unit, r.MaxProcs)
		}
		if r.MaxProcs == 1 {
			baseline[key{r.Pattern, r.Unit}] = r.Speedup
			if r.Pattern == "gat" && strings.Contains(r.Spec, "gather") {
				gatAggSpeedup = r.Speedup
			}
		}
	}
	if gatMin > 0 {
		if gatAggSpeedup == 0 {
			return fmt.Errorf("baseline %s has no single-worker GAT aggregate (gather) row", path)
		}
		fmt.Printf("fused: committed GAT aggregate kernel speedup %.2fx (floor %.2fx)\n",
			gatAggSpeedup, gatMin)
		if gatAggSpeedup < gatMin {
			return fmt.Errorf("committed GAT aggregate kernel speedup %.2fx below floor %.2fx — regenerate or fix the specializer",
				gatAggSpeedup, gatMin)
		}
	}

	// Re-measure at the baseline's own graph shape: the interp/spec
	// ratio shifts with cache residency, so a smaller graph would gate
	// apples against oranges. Single worker keeps the run bounded.
	cfg := bench.DefaultFusedConfig()
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	cfg.MaxProcsList = []int{1}
	rep, err := bench.FusedBench(cfg)
	if err != nil {
		return err
	}
	for _, r := range rep.Rows {
		if !r.BitwiseEqual {
			return fmt.Errorf("%s unit %d: specialized and interpreted outputs diverged", r.Pattern, r.Unit)
		}
		want, ok := baseline[key{r.Pattern, r.Unit}]
		if !ok {
			continue
		}
		floor := want * (1 - tol)
		fmt.Printf("fused: %s unit %d (%s) speedup %.2fx (baseline %.2fx, floor %.2fx), bitwise equal\n",
			r.Pattern, r.Unit, r.Spec, r.Speedup, want, floor)
		if r.Speedup < floor {
			return fmt.Errorf("%s unit %d: specialization speedup regressed: %.2fx < floor %.2fx (baseline %.2fx, tol %.0f%%)",
				r.Pattern, r.Unit, r.Speedup, floor, want, tol*100)
		}
	}
	return nil
}

// checkGemm replays the deterministic arithmetic-intensity model and the
// feature-tile planner at the baseline's shapes: the modeled
// blocked-vs-naive speedup must not fall more than tol below the
// committed value at any dim, and the tile plans must match exactly
// (the planner is a pure function of the kernel shape).
func checkGemm(path string, tol float64) error {
	var base bench.GemmReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if len(base.Model) == 0 || len(base.AggPlan) == 0 {
		return fmt.Errorf("%s has no ai_model/agg_plan entries", path)
	}

	cfg := bench.DefaultGemmConfig()
	cfg.ModelOnly = true
	var dims []int
	for _, mo := range base.Model {
		dims = append(dims, mo.Dim)
	}
	cfg.Dims = dims
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	rep, err := bench.GemmBench(cfg)
	if err != nil {
		return err
	}

	for i, want := range base.Model {
		got := bench.GemmModel(base.Rows, want.Dim, want.Dim)
		floor := want.ModelSpeedup * (1 - tol)
		if got.ModelSpeedup < floor {
			return fmt.Errorf("dim %d: modeled speedup regressed: %.3fx < floor %.3fx (baseline %.3fx, tol %.0f%%)",
				want.Dim, got.ModelSpeedup, floor, want.ModelSpeedup, tol*100)
		}
		if i < len(rep.AggPlan) && i < len(base.AggPlan) && rep.AggPlan[i] != base.AggPlan[i] {
			return fmt.Errorf("dim %d: tile plan drifted: now %+v, baseline %+v — regenerate BENCH_gemm.json",
				want.Dim, rep.AggPlan[i], base.AggPlan[i])
		}
	}
	last := base.Model[len(base.Model)-1]
	got := bench.GemmModel(base.Rows, last.Dim, last.Dim)
	fmt.Printf("gemm: modeled speedup at dim %d %.3fx (baseline %.3fx), %d tile plans match\n",
		last.Dim, got.ModelSpeedup, last.ModelSpeedup, len(base.AggPlan))
	return nil
}

// checkObs measures the tracing layer's disabled cost against the
// kernels benchmark on this host and fails if the modeled overhead
// (spans-per-launch × disabled-span ns ÷ kernel ns/launch) exceeds max.
// No baseline file: both terms are measured in the same process, so the
// ratio is meaningful on any runner.
func checkObs(max float64) error {
	cfg := bench.DefaultKernelsConfig()
	cfg.Vertices = 20000 // smaller graph → worst case for relative overhead
	rep, err := bench.ObsOverheadBench(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("obs: modeled disabled overhead %.4f%% (span %.1f ns × %d ÷ launch %d ns; ceiling %.1f%%), enabled measured %.2f%%\n",
		rep.ModeledOverheadOff*100, rep.DisabledSpanNs, rep.SpansPerLaunch,
		rep.KernelNsPerLaunch, max*100, rep.MeasuredOverheadOn*100)
	if rep.ModeledOverheadOff > max {
		return fmt.Errorf("disabled tracing overhead %.4f%% exceeds ceiling %.1f%%",
			rep.ModeledOverheadOff*100, max*100)
	}
	return nil
}

// checkAdaptive gates the committed adaptive re-planning evidence in the
// serve baseline: the engine's measured micro-batch re-planner must have
// committed a learned batch size that beat the latency-tuned static cap
// by at least `min`× on end-to-end per-request latency (the interleaved
// min-of-trials numbers the hysteresis decision was made from), and
// every answer served during exploration and after the plan swap must
// have matched the serial forward bit for bit. Committed-only — the
// experiment saturates a 100k-vertex graph for a minute or more, so CI
// reads the evidence rather than re-running it; regenerate with
// `seastar-bench -exp serve -serve-out BENCH_serve.json`.
func checkAdaptive(path string, min float64) error {
	var base bench.ServeReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if !base.BitwiseEqual {
		return fmt.Errorf("committed adaptive serve run answered differently from the serial forward — reproducibility broken")
	}
	if base.LearnedMaxBatch <= 0 || base.Gen <= 0 {
		return fmt.Errorf("%s has no settled plan (learned_max_batch=%d, gen=%d) — regenerate with seastar-bench -exp serve",
			path, base.LearnedMaxBatch, base.Gen)
	}
	fmt.Printf("adaptive: committed serve re-planning speedup %.2fx on n=%d (max_batch %d → %d, gen=%d; floor %.2fx), bitwise equal\n",
		base.MeasuredSpeedup, base.Graph.Vertices,
		base.StaticMaxBatch, base.LearnedMaxBatch, base.Gen, min)
	if base.MeasuredSpeedup < min {
		return fmt.Errorf("committed adaptive speedup %.2fx below floor %.2fx — the learned plan no longer pays for itself",
			base.MeasuredSpeedup, min)
	}
	return nil
}

// checkDelta gates the committed graph-delta evidence: every incremental
// child's embeddings must have matched a rebuild-from-scratch forward bit
// for bit — hard, no tolerance — and the incremental recompute must have
// beaten the full forward by at least `min`× while each delta touched no
// more than touchedMax of the vertices (the regime the speedup claim is
// scoped to). Committed-only — each of the 30 deltas pays a full rebuild
// baseline on a 100k-vertex graph, so CI reads the evidence and the
// nightly bench job regenerates it with
// `seastar-bench -exp delta -delta-out BENCH_delta.json`.
func checkDelta(path string, min, touchedMax float64) error {
	var base bench.DeltaReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if !base.BitwiseEqual {
		return fmt.Errorf("committed delta run diverged from rebuild-from-scratch — incremental recompute broken")
	}
	if base.Deltas <= 0 || base.Incremental <= 0 {
		return fmt.Errorf("%s has no incremental deltas (%d of %d) — regenerate with seastar-bench -exp delta",
			path, base.Incremental, base.Deltas)
	}
	if base.TouchedFrac > touchedMax {
		return fmt.Errorf("committed deltas touched %.3f%% of vertices, above the %.1f%% regime the gate scopes the speedup to",
			base.TouchedFrac*100, touchedMax*100)
	}
	fmt.Printf("delta: committed incremental recompute %.2fx vs full forward, %.2fx vs rebuild on n=%d (%d/%d incremental, %.4f%% touched; floor %.2fx), bitwise equal\n",
		base.SpeedupVsFull, base.SpeedupVsRebuild, base.Graph.Vertices,
		base.Incremental, base.Deltas, base.TouchedFrac*100, min)
	if base.SpeedupVsFull < min {
		return fmt.Errorf("committed incremental speedup %.2fx below floor %.2fx — the delta path no longer pays for itself",
			base.SpeedupVsFull, min)
	}
	return nil
}

// checkShard gates the committed sharded-serving baseline
// (BENCH_shard.json, regenerated nightly with `seastar-bench -exp shard
// -shard-out BENCH_shard.json`): the bitwise flag is a hard fail, the
// edge-cut ratio (deduplicated mirror flows over edges) must stay under
// cutMax, and measured interior-vertex latency must stay within
// latencyMax of the single-shard deployment. The partitioner is
// deterministic, so the partition-quality half of the baseline is also
// re-derived here from the committed (seed, size, mode, shard count)
// and must reproduce exactly — a drifted partitioner cannot hide behind
// a stale JSON.
func checkShard(path string, cutMax, latencyMax float64) error {
	var base bench.ShardReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if !base.BitwiseEqual {
		return fmt.Errorf("committed sharded logits diverged from the single-process forward — merge order or normalizers broken")
	}
	if base.EdgeCutRatio > cutMax {
		return fmt.Errorf("committed edge-cut ratio %.3f above the %.2f cap — partitioner quality regressed",
			base.EdgeCutRatio, cutMax)
	}
	if base.LatencyRatio <= 0 {
		return fmt.Errorf("%s has no interior-vertex latency measurement — regenerate with seastar-bench -exp shard", path)
	}
	if base.LatencyRatio > latencyMax {
		return fmt.Errorf("committed interior-vertex latency %.2fx single-shard, above the %.1fx cap",
			base.LatencyRatio, latencyMax)
	}
	rng := rand.New(rand.NewSource(base.Seed))
	g := graph.ZipfDegree(rng, base.Graph.Vertices, base.Graph.AvgDegree, base.Graph.Alpha)
	p, err := part.Build(g, base.Shards, base.Mode)
	if err != nil {
		return fmt.Errorf("re-deriving committed partition: %w", err)
	}
	if p.Stats.MirrorFlows != base.MirrorFlows || !approxEq(p.Stats.EdgeCutRatio, base.EdgeCutRatio) ||
		!approxEq(p.Stats.Replication, base.Replication) {
		return fmt.Errorf("partition drifted from committed baseline: cut %.6f/flows %d/repl %.4f now, %.6f/%d/%.4f committed — regenerate %s",
			p.Stats.EdgeCutRatio, p.Stats.MirrorFlows, p.Stats.Replication,
			base.EdgeCutRatio, base.MirrorFlows, base.Replication, path)
	}
	fmt.Printf("shard: committed %d-way %s partition cut %.3f (cap %.2f), repl %.2fx, interior latency %.2fx single-shard (cap %.1fx), bitwise equal; partition re-derived OK\n",
		base.Shards, base.Mode, base.EdgeCutRatio, cutMax, base.Replication, base.LatencyRatio, latencyMax)
	return nil
}

// checkOOCore gates the out-of-core store baseline: the committed
// store-backed epoch must be bitwise-equal to in-memory and within the
// ratio cap both as measured and under the capped-cache model. It then
// re-derives the contract in-process at small scale — convert, reopen,
// fingerprint-verify, and one epoch of store-vs-memory training — so
// format or equivalence drift fails CI even with a stale JSON.
func checkOOCore(path string, ratioMax float64) error {
	var base bench.OOCoreReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	if !base.BitwiseEqual {
		return fmt.Errorf("committed store-backed loss curve diverged from in-memory — the mmap path changed numerics")
	}
	if base.MeasuredRatio <= 0 || base.InMemEpochNs <= 0 {
		return fmt.Errorf("%s has no epoch measurements — regenerate with seastar-bench -exp oocore", path)
	}
	if base.MeasuredRatio > ratioMax {
		return fmt.Errorf("committed store-backed epoch %.2fx in-memory, above the %.2fx cap",
			base.MeasuredRatio, ratioMax)
	}
	if base.Model.Ratio > ratioMax {
		return fmt.Errorf("modeled capped-cache epoch %.2fx in-memory (cache %.0f%%), above the %.2fx cap",
			base.Model.Ratio, base.Model.CacheFrac*100, ratioMax)
	}
	if err := bench.OOCoreRederive(); err != nil {
		return err
	}
	capNote := "warm-cache"
	if base.MemCapBytes > 0 {
		capNote = fmt.Sprintf("capped at %d MB", base.MemCapBytes>>20)
	}
	fmt.Printf("oocore: committed store-backed epoch %.2fx in-memory (%s, cap %.2fx), model %.2fx at %.0f%% cache, bitwise equal; convert+train re-derived OK\n",
		base.MeasuredRatio, capNote, ratioMax, base.Model.Ratio, base.Model.CacheFrac*100)
	return nil
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// reportDivergence prints model-vs-measured columns from the committed
// baselines: the kernels makespan model's ideal speedup against the
// measured same-variant wall scaling at each worker count, and the
// pipeline overlap model against each measured wall speedup. A gap above
// `warn` gets a WARN marker but never fails the gate — the models are
// host-independent by design, so divergence is a signal that this host's
// measured profile disagrees with the plan (exactly what the adaptive
// layer consumes), not a regression.
func reportDivergence(kernelsPath, pipelinePath string, warn float64) {
	mark := func(model, measured float64) string {
		if model <= 0 || measured <= 0 {
			return " (no measurement)"
		}
		d := (model - measured) / model
		if d < 0 {
			d = -d
		}
		if d > warn {
			return fmt.Sprintf(" WARN divergence %.0f%% > %.0f%%", d*100, warn*100)
		}
		return fmt.Sprintf(" (divergence %.0f%%)", d*100)
	}
	if kernelsPath != "" {
		var base bench.KernelsReport
		if err := readJSON(kernelsPath, &base); err == nil {
			ideal := map[int]float64{}
			for _, mo := range base.Model {
				ideal[mo.Workers] = mo.IdealSpeedup
			}
			for _, m := range base.Measured {
				if m.Name != "edge_balanced" || m.MaxProcs <= 1 || m.MeasuredSpeedup <= 0 {
					continue
				}
				fmt.Printf("divergence: kernels @%dw: model %.2fx vs measured %.2fx%s\n",
					m.MaxProcs, ideal[m.MaxProcs], m.MeasuredSpeedup,
					mark(ideal[m.MaxProcs], m.MeasuredSpeedup))
			}
		}
	}
	if pipelinePath != "" {
		var base bench.PipelineReport
		if err := readJSON(pipelinePath, &base); err == nil {
			for _, r := range base.PerProcs {
				// Prefer the row's calibrated prediction (profiled stage
				// costs floored by CPU capacity); old baselines without it
				// fall back to the host-independent replay, which
				// over-promises on small hosts.
				model, kind := r.ModelSpeedup, "calibrated"
				if model <= 0 {
					model, kind = base.OverlapModel.Speedup, "model"
				}
				fmt.Printf("divergence: pipeline @%d procs: %s %.2fx vs measured wall %.2fx%s\n",
					r.MaxProcs, kind, model, r.WallSpeedup, mark(model, r.WallSpeedup))
			}
		}
	}
}

// checkPipeline re-runs the pipeline benchmark at the baseline's shape
// and gates on (a) bitwise-equal loss curves — a hard reproducibility
// invariant — and (b) the modeled overlap speedup not regressing more
// than tol below the committed value. When the committed baseline
// carries an adaptive section, its bitwise flag is a hard gate too: the
// pipeline tuner is free to validate the static shape (hysteresis
// holding against host noise is a correct outcome, so no speedup floor
// here), but exploration must never have perturbed the loss curve.
func checkPipeline(path string, tol float64) error {
	var base bench.PipelineReport
	if err := readJSON(path, &base); err != nil {
		return err
	}
	want := base.OverlapModel
	if want.Speedup <= 0 {
		return fmt.Errorf("%s has no overlap_model speedup", path)
	}
	if ad := base.Adaptive; ad != nil {
		if !ad.BitwiseEqual {
			return fmt.Errorf("committed adaptive pipeline run perturbed the loss curve — reproducibility broken")
		}
		fmt.Printf("pipeline: committed adaptive evidence pf %d/w %d → pf %d/w %d (gen=%d, %.2fx), bitwise equal\n",
			ad.StaticPrefetch, ad.StaticWorkers, ad.LearnedPrefetch, ad.LearnedWorkers,
			ad.Gen, ad.MeasuredSpeedup)
	}

	cfg := bench.DefaultPipelineBenchConfig()
	cfg.Vertices = base.Graph.Vertices
	cfg.AvgDegree = base.Graph.AvgDegree
	cfg.Alpha = base.Graph.Alpha
	cfg.BatchSize = base.BatchSize
	cfg.FanOut = base.FanOut
	cfg.Prefetch = base.Prefetch
	cfg.SampleWorkers = base.SampleWorkers
	rep, err := bench.PipelineBench(cfg)
	if err != nil {
		return err
	}

	if !rep.BitwiseEqual {
		return fmt.Errorf("pipelined and serial loss curves diverged — reproducibility broken")
	}
	got := rep.OverlapModel
	floor := want.Speedup * (1 - tol)
	fmt.Printf("pipeline: modeled overlap speedup %.3fx (baseline %.3fx, floor %.3fx), bitwise equal\n",
		got.Speedup, want.Speedup, floor)
	if got.Speedup < floor {
		return fmt.Errorf("overlap speedup regressed: %.3fx < floor %.3fx (baseline %.3fx, tol %.0f%%)",
			got.Speedup, floor, want.Speedup, tol*100)
	}
	return nil
}

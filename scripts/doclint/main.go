// Command doclint enforces the repo's godoc contract: every exported
// symbol in the listed package directories must carry a doc comment.
// Offline-friendly replacement for the doc-comment checks of revive /
// golint, built on the standard library only.
//
//	go run ./scripts/doclint ./internal/gir ./internal/fusion ...
//
// Exit status 1 if any exported symbol is undocumented. Test files are
// skipped; so are struct fields and interface methods (the type's doc
// is expected to carry the contract).
//
// A second mode keeps the operator guide honest about command-line
// flags:
//
//	go run ./scripts/doclint -flags docs/operations.md ./cmd/seastar-train ...
//
// parses the flag definitions out of each listed binary's source and
// checks both directions: every defined flag must be mentioned (as a
// backticked `-name` token) in the markdown section headed by that
// binary's name, and every lone backticked `-name` token anywhere in
// the document must be a flag some listed binary actually defines —
// so the guide can neither omit a flag nor document a phantom one.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <pkg-dir>... | doclint -flags <doc.md> <cmd-dir>...")
		os.Exit(2)
	}
	if os.Args[1] == "-flags" {
		if len(os.Args) < 4 {
			fmt.Fprintln(os.Stderr, "usage: doclint -flags <doc.md> <cmd-dir>...")
			os.Exit(2)
		}
		lintFlags(os.Args[2], os.Args[3:])
		return
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		miss, err := lintDir(strings.TrimPrefix(dir, "./"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, m := range miss {
			fmt.Println(m)
		}
		bad += len(miss)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported symbols lack doc comments\n", bad)
		os.Exit(1)
	}
	fmt.Println("doclint OK")
}

// lintDir parses every non-test Go file in dir and returns one
// "file:line: symbol" string per undocumented exported declaration.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var miss []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		miss = append(miss, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					lintGen(d, report)
				}
			}
		}
	}
	return miss, nil
}

// lintGen handles const/var/type blocks: a doc comment on the block
// covers single-spec declarations; inside grouped blocks each exported
// spec needs its own comment unless the block itself is documented.
func lintGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kindWord(d.Tok), n.Name)
				}
			}
		}
	}
}

func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// lintFlags cross-checks docPath against the flags defined by the
// listed cmd directories and exits non-zero on any mismatch.
func lintFlags(docPath string, dirs []string) {
	doc, err := os.ReadFile(docPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	defined := map[string]bool{} // union across binaries, for the reverse check
	bad := 0
	for _, dir := range dirs {
		bin := filepath.Base(strings.TrimSuffix(dir, "/"))
		flags, err := cmdFlags(strings.TrimPrefix(dir, "./"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, f := range flags {
			defined[f] = true
		}
		section := docSection(string(doc), bin)
		if section == "" {
			fmt.Printf("%s: no section heading for %s\n", docPath, bin)
			bad++
			continue
		}
		for _, f := range flags {
			if !strings.Contains(section, "`-"+f+"`") {
				fmt.Printf("%s: section %s does not document flag -%s\n", docPath, bin, f)
				bad++
			}
		}
	}
	for _, tok := range backtickFlags(string(doc)) {
		if !defined[tok] {
			fmt.Printf("%s: documents flag -%s, which no listed binary defines\n", docPath, tok)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d flag-doc mismatches\n", bad)
		os.Exit(1)
	}
	fmt.Println("doclint -flags OK")
}

// cmdFlags parses the non-test Go files of a main package and returns
// the names passed to flag.String/Bool/Int/.../Var definitions.
func cmdFlags(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var flags []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recv, ok := sel.X.(*ast.Ident)
				if !ok || recv.Name != "flag" {
					return true
				}
				// Name is arg 0 for flag.String/Bool/... and flag.Func,
				// arg 1 for the flag.XxxVar and flag.Var forms.
				idx := 0
				if strings.HasSuffix(sel.Sel.Name, "Var") {
					idx = 1
				}
				if sel.Sel.Name == "Parse" || len(call.Args) <= idx {
					return true
				}
				if lit, ok := call.Args[idx].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					flags = append(flags, strings.Trim(lit.Value, `"`))
				}
				return true
			})
		}
	}
	return flags, nil
}

// docSection returns the markdown between the first heading line whose
// text contains name and the next heading of the same or higher level
// (fewer or equal '#'), or "" when no heading matches.
func docSection(doc, name string) string {
	lines := strings.Split(doc, "\n")
	start, level := -1, 0
	for i, l := range lines {
		if !strings.HasPrefix(l, "#") {
			continue
		}
		n := len(l) - len(strings.TrimLeft(l, "#"))
		if start < 0 {
			if strings.Contains(l, name) {
				start, level = i, n
			}
		} else if n <= level {
			return strings.Join(lines[start:i], "\n")
		}
	}
	if start < 0 {
		return ""
	}
	return strings.Join(lines[start:], "\n")
}

// backtickFlags extracts every backtick span in doc whose entire
// content is a single flag token like -graph-store (one leading dash,
// then lowercase/digit/dash). Spans with spaces or other text — full
// command lines — are ignored; only lone `-name` mentions are claims
// the reverse check holds the doc to.
func backtickFlags(doc string) []string {
	var out []string
	for {
		i := strings.IndexByte(doc, '`')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(doc[i+1:], '`')
		if j < 0 {
			return out
		}
		span := doc[i+1 : i+1+j]
		doc = doc[i+j+2:]
		if len(span) < 2 || span[0] != '-' {
			continue
		}
		name := span[1:]
		ok := true
		for _, c := range name {
			if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-') {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, name)
		}
	}
}

// Command doclint enforces the repo's godoc contract: every exported
// symbol in the listed package directories must carry a doc comment.
// Offline-friendly replacement for the doc-comment checks of revive /
// golint, built on the standard library only.
//
//	go run ./scripts/doclint ./internal/gir ./internal/fusion ...
//
// Exit status 1 if any exported symbol is undocumented. Test files are
// skipped; so are struct fields and interface methods (the type's doc
// is expected to carry the contract).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <pkg-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		miss, err := lintDir(strings.TrimPrefix(dir, "./"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, m := range miss {
			fmt.Println(m)
		}
		bad += len(miss)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported symbols lack doc comments\n", bad)
		os.Exit(1)
	}
	fmt.Println("doclint OK")
}

// lintDir parses every non-test Go file in dir and returns one
// "file:line: symbol" string per undocumented exported declaration.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var miss []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		miss = append(miss, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					lintGen(d, report)
				}
			}
		}
	}
	return miss, nil
}

// lintGen handles const/var/type blocks: a doc comment on the block
// covers single-spec declarations; inside grouped blocks each exported
// spec needs its own comment unless the block itself is documented.
func lintGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kindWord(d.Tok), n.Name)
				}
			}
		}
	}
}

func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
